#include "hd/encoder.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/status.hpp"
#include "kernels/backend.hpp"
#include "kernels/bitsliced.hpp"

namespace pulphd::hd {

namespace {

// Per-thread scratch arena backing encode / encode_batch: the packed bound
// channel rows of a chunk of samples plus the row-pointer table handed to
// the backend's threshold kernel. thread_local keeps the serial path and
// every encode_trials shard allocation-free after warmup without any
// sharing between threads.
struct SpatialArena {
  std::vector<Word> rows;
  std::vector<const Word*> row_ptrs;
};

SpatialArena& spatial_arena() {
  static thread_local SpatialArena arena;
  return arena;
}

// Cap the packed-row matrix a batch gathers at once so the arena stays
// cache-resident (in words; 256 Ki words = 1 MiB).
constexpr std::size_t kArenaWordBudget = std::size_t{1} << 18;

// Samples the fused trial pass spatial-encodes per chunk: large enough to
// amortize the packed gather, small enough (~80 KiB of hypervectors at the
// paper's D) to stay cache-resident.
constexpr std::size_t kFusedChunkSamples = 64;

// Per-thread scratch of the fused trial pass: the spatial chunk buffer, the
// temporal recurrence state, and the counter planes. Rebuilt only when the
// encoder geometry (dim, n) changes; concurrent encode_trials shards each
// own one, so a trial encode is allocation-free after warmup.
struct FusedArena {
  std::vector<Hypervector> spatials;
  std::optional<TemporalEncoder> temporal;
  std::optional<Hypervector> gram;
  kernels::CounterBundle counters;

  Hypervector& gram_for(std::size_t dim) {
    if (!gram || gram->dim() != dim) gram.emplace(dim);
    return *gram;
  }

  TemporalEncoder& temporal_for(std::size_t n, std::size_t dim) {
    if (!temporal || temporal->n() != n || temporal->dim() != dim) {
      temporal.emplace(n, dim);
    } else {
      temporal->reset();
    }
    return *temporal;
  }

  std::span<Hypervector> spatials_for(std::size_t count, std::size_t dim) {
    if (spatials.size() < count || (!spatials.empty() && spatials.front().dim() != dim)) {
      spatials.assign(count, Hypervector(dim));
    }
    return std::span<Hypervector>(spatials.data(), count);
  }
};

FusedArena& fused_arena() {
  static thread_local FusedArena arena;
  return arena;
}

// The shared gram pump of the fused and streaming paths: chunked packed
// spatial encode feeding the sliding N-gram recurrence, one callback per
// complete window. `temporal` carries state across calls (the streaming
// path resumes it mid-stream; the fused path hands in a freshly reset one),
// and with n == 1 it is bypassed entirely — every spatial is its own
// 1-gram.
template <typename PerGram>
void pump_grams(const SpatialEncoder& spatial, std::size_t n, TemporalEncoder& temporal,
                std::span<Hypervector> chunk_buf, Hypervector& gram_scratch,
                std::span<const std::vector<float>> samples, PerGram&& per_gram) {
  for (std::size_t base = 0; base < samples.size(); base += chunk_buf.size()) {
    const std::size_t chunk = std::min(chunk_buf.size(), samples.size() - base);
    spatial.encode_batch(samples.subspan(base, chunk), chunk_buf.subspan(0, chunk));
    for (std::size_t s = 0; s < chunk; ++s) {
      if (n == 1) {
        per_gram(chunk_buf[s]);
      } else if (temporal.push(chunk_buf[s], &gram_scratch)) {
        per_gram(gram_scratch);
      }
    }
  }
}

}  // namespace

SpatialEncoder::SpatialEncoder(const ItemMemory& im, const ContinuousItemMemory& cim,
                               std::size_t channels)
    : im_(&im), cim_(&cim), channels_(channels) {
  require(channels >= 1, "SpatialEncoder: channels must be >= 1");
  require(im.size() >= channels, "SpatialEncoder: item memory smaller than channel count");
  require(im.dim() == cim.dim(), "SpatialEncoder: IM/CIM dimension mismatch");
}

void SpatialEncoder::bind_sample_rows(std::span<const float> sample,
                                      const kernels::Backend& backend, Word* rows) const {
  const std::size_t words = words_for_dim(dim());
  for (std::size_t c = 0; c < channels_; ++c) {
    backend.xor_words(im_->at(c).words().data(), cim_->encode(sample[c]).words().data(),
                      rows + c * words, words);
  }
  if (channels_ % 2 == 0) {
    // §5.1's reproducible tie-break operand: the XOR of the first two
    // bound rows, appended so the majority count is odd.
    backend.xor_words(rows, rows + words, rows + channels_ * words, words);
  }
}

std::vector<Hypervector> SpatialEncoder::bind_channels(std::span<const float> sample) const {
  require(sample.size() == channels_, "SpatialEncoder: sample size != channel count");
  std::vector<Hypervector> bound;
  bound.reserve(channels_ + 1);
  for (std::size_t c = 0; c < channels_; ++c) {
    bound.push_back(im_->at(c) ^ cim_->encode(sample[c]));
  }
  if (channels_ % 2 == 0) {
    if (channels_ >= 2) {
      bound.push_back(bound[0] ^ bound[1]);
    } else {
      // Unreachable (channels >= 1 and even implies >= 2); kept as a guard.
      bound.push_back(bound[0]);
    }
  }
  return bound;
}

Hypervector SpatialEncoder::encode(std::span<const float> sample) const {
  require(sample.size() == channels_, "SpatialEncoder: sample size != channel count");
  const kernels::Backend& backend = kernels::active_backend();
  const std::size_t words = words_for_dim(dim());
  const std::size_t rows = bound_rows();
  SpatialArena& arena = spatial_arena();
  arena.rows.resize(rows * words);
  arena.row_ptrs.resize(rows);
  bind_sample_rows(sample, backend, arena.rows.data());
  for (std::size_t r = 0; r < rows; ++r) arena.row_ptrs[r] = arena.rows.data() + r * words;
  Hypervector out(dim());
  backend.threshold_words(arena.row_ptrs.data(), rows, rows / 2,
                          out.mutable_words().data(), words);
  return out;  // bound rows have zero padding, so the majority does too
}

void SpatialEncoder::encode_batch(std::span<const std::vector<float>> samples,
                                  std::span<Hypervector> out) const {
  require(samples.size() == out.size(),
          "SpatialEncoder::encode_batch: samples/out size mismatch");
  if (samples.empty()) return;
  const kernels::Backend& backend = kernels::active_backend();
  const std::size_t words = words_for_dim(dim());
  const std::size_t rows = bound_rows();
  const std::size_t words_per_sample = rows * words;
  // Chunk the batch so the packed matrix stays cache-resident while still
  // amortizing the gather over many samples per pass.
  const std::size_t chunk_samples =
      std::max<std::size_t>(1, kArenaWordBudget / words_per_sample);
  SpatialArena& arena = spatial_arena();
  for (std::size_t base = 0; base < samples.size(); base += chunk_samples) {
    const std::size_t chunk = std::min(chunk_samples, samples.size() - base);
    arena.rows.resize(chunk * words_per_sample);
    arena.row_ptrs.resize(rows);
    // Pass 1: quantize every channel of every sample in the chunk and
    // gather the bound CIM/IM rows into one contiguous packed word matrix.
    for (std::size_t s = 0; s < chunk; ++s) {
      const std::vector<float>& sample = samples[base + s];
      require(sample.size() == channels_,
              "SpatialEncoder::encode_batch: sample size != channel count");
      require(out[base + s].dim() == dim(),
              "SpatialEncoder::encode_batch: output dimension mismatch");
      bind_sample_rows(sample, backend, arena.rows.data() + s * words_per_sample);
    }
    // Pass 2: word-parallel channel majority over each sample's packed
    // row slice, straight into the caller's hypervectors.
    for (std::size_t s = 0; s < chunk; ++s) {
      const Word* sample_rows = arena.rows.data() + s * words_per_sample;
      for (std::size_t r = 0; r < rows; ++r) arena.row_ptrs[r] = sample_rows + r * words;
      backend.threshold_words(arena.row_ptrs.data(), rows, rows / 2,
                              out[base + s].mutable_words().data(), words);
    }
  }
}

TemporalEncoder::TemporalEncoder(std::size_t n, std::size_t dim)
    : n_(n),
      dim_(dim),
      window_(n > 1 ? n : 0, Hypervector(dim >= 1 ? dim : 1)),
      gram_(dim >= 1 ? dim : 1),
      scratch_(dim >= 1 ? dim : 1),
      rotated_new_(dim >= 1 ? dim : 1) {
  require(n >= 1, "TemporalEncoder: n must be >= 1");
  require(dim >= 1, "TemporalEncoder: dim must be >= 1");
}

bool TemporalEncoder::push(const Hypervector& spatial, Hypervector* out) {
  require(spatial.dim() == dim_, "TemporalEncoder::push: dimension mismatch");
  require(out != nullptr, "TemporalEncoder::push: out must not be null");
  if (n_ == 1) {
    // Pass-through (the paper's EMG configuration): the 1-gram is the
    // spatial hypervector itself.
    fill_ = 1;
    *out = spatial;
    return true;
  }
  if (fill_ < n_) {
    window_[fill_] = spatial;  // assignment reuses the preallocated slot
    ++fill_;
    if (fill_ < n_) return false;
    // First full window: the direct reduction G = S_0 ^ rho(S_1) ^ ... ^
    // rho^{n-1}(S_{n-1}), rotating into preallocated scratch.
    gram_ = window_[0];
    for (std::size_t k = 1; k < n_; ++k) {
      window_[k].rotate_into(scratch_, k);
      gram_ ^= scratch_;
    }
    head_ = 0;
    *out = gram_;
    return true;
  }
  // Steady state: slide the window by the recurrence
  //   G_{t+1} = rho^{-1}(G_t ^ S_oldest) ^ rho^{n-1}(S_new)
  // (rho^{-1} == rho^{dim-1}): XOR the expiring sample out, un-rotate the
  // survivors one step, and splice the newest sample in at depth n-1 — two
  // rotations and two XORs per sample, however large n is.
  gram_ ^= window_[head_];
  gram_.rotate_into(scratch_, dim_ - 1);
  spatial.rotate_into(rotated_new_, n_ - 1);
  scratch_ ^= rotated_new_;
  std::swap(gram_, scratch_);
  window_[head_] = spatial;
  head_ = (head_ + 1) % n_;
  *out = gram_;
  return true;
}

std::vector<Hypervector> TemporalEncoder::encode_sequence(std::span<const Hypervector> sequence,
                                                          std::size_t n) {
  require(n >= 1, "TemporalEncoder::encode_sequence: n must be >= 1");
  std::vector<Hypervector> out;
  if (sequence.size() < n) return out;
  out.reserve(sequence.size() - n + 1);
  // Slide one encoder over the sequence — the recurrence makes every window
  // after the first O(dim) instead of O(n * dim).
  TemporalEncoder enc(n, sequence.front().dim());
  Hypervector gram(sequence.front().dim());
  for (const Hypervector& s : sequence) {
    if (enc.push(s, &gram)) out.push_back(gram);
  }
  return out;
}

StreamingEncoder::StreamingEncoder(const SpatialEncoder& spatial, std::size_t n,
                                   Hypervector tie_break)
    : spatial_(&spatial),
      n_(n),
      tie_break_(std::move(tie_break)),
      temporal_(n >= 1 ? n : 1, spatial.dim()),
      gram_(spatial.dim()) {
  require(n >= 1, "StreamingEncoder: n must be >= 1");
  require(tie_break_.dim() == spatial.dim(), "StreamingEncoder: tie-break dim mismatch");
}

void StreamingEncoder::configure(std::size_t window, std::size_t hop) {
  require(window >= n_, "StreamingEncoder::configure: window must be >= n");
  require(hop >= 1, "StreamingEncoder::configure: hop must be >= 1");
  window_ = window;
  hop_ = hop;
  // One counter bundle per concurrently open window; reshaping reuses the
  // slots' plane buffers, and each slot is (re)provisioned the moment its
  // window starts, so no per-window allocation happens mid-stream after
  // warmup.
  slots_.resize(active_windows(window, hop, n_));
  if (chunk_.empty() || chunk_.front().dim() != dim()) {
    chunk_.assign(kFusedChunkSamples, Hypervector(dim()));
  }
  reset();
}

void StreamingEncoder::reset() noexcept {
  temporal_.reset();
  samples_pushed_ = 0;
  grams_seen_ = 0;
  windows_emitted_ = 0;
}

void StreamingEncoder::on_gram(const kernels::Backend& backend, const Word* gram_words,
                               std::vector<Hypervector>& out) {
  const std::size_t j = grams_seen_++;  // gram j spans samples j .. j+n-1
  const std::size_t words = words_for_dim(dim());
  const std::size_t span = window_ - n_;  // grams per window, minus one
  // Window w owns grams w*hop .. w*hop + span; gram j therefore feeds every
  // window whose start lies in [j - span, j] on the hop grid. The slot pool
  // holds exactly that many bundles, so w % slots size is collision-free.
  if (j % hop_ == 0) {
    slots_[(j / hop_) % slots_.size()].reset(words, span + 1);
  }
  const std::size_t w_hi = j / hop_;
  const std::size_t w_lo = j >= span ? (j - span + hop_ - 1) / hop_ : 0;
  for (std::size_t w = w_lo; w <= w_hi; ++w) {
    slots_[w % slots_.size()].add(backend, gram_words);
  }
  if (j >= span && (j - span) % hop_ == 0) {
    // Gram j is the last of window (j - span) / hop — read its bundle out.
    // Padding invariants match FusedTrialEncoder::encode_query: gram and
    // tie-break padding bits are zero, so the majority's are too.
    out.emplace_back(dim());
    slots_[((j - span) / hop_) % slots_.size()].majority(backend, tie_break_.words().data(),
                                                         out.back().mutable_words().data());
    ++windows_emitted_;
  }
}

std::size_t StreamingEncoder::push(std::span<const std::vector<float>> samples,
                                   std::vector<Hypervector>& out) {
  require(configured(), "StreamingEncoder::push: configure() must be called first");
  const std::size_t emitted_before = out.size();
  const kernels::Backend& backend = kernels::active_backend();
  pump_grams(*spatial_, n_, temporal_, std::span<Hypervector>(chunk_), gram_, samples,
             [&](const Hypervector& gram) { on_gram(backend, gram.words().data(), out); });
  samples_pushed_ += samples.size();
  return out.size() - emitted_before;
}

FusedTrialEncoder::FusedTrialEncoder(const SpatialEncoder& spatial, std::size_t n)
    : spatial_(&spatial), n_(n) {
  require(n >= 1, "FusedTrialEncoder: n must be >= 1");
}

template <typename PerGram>
void FusedTrialEncoder::for_each_ngram(std::span<const std::vector<float>> trial,
                                       PerGram&& per_gram) const {
  if (trial.empty()) return;
  FusedArena& arena = fused_arena();
  const std::size_t chunk_samples = std::min<std::size_t>(kFusedChunkSamples, trial.size());
  std::span<Hypervector> spatials = arena.spatials_for(chunk_samples, dim());
  // The n == 1 pass-through inside the pump never touches the temporal
  // ring, so the arena encoder (and its reset) is only materialized for
  // real windows.
  TemporalEncoder& temporal = arena.temporal_for(n_ == 1 ? 1 : n_, dim());
  pump_grams(*spatial_, n_, temporal, spatials, arena.gram_for(dim()), trial,
             std::forward<PerGram>(per_gram));
}

Hypervector FusedTrialEncoder::encode_query(std::span<const std::vector<float>> trial,
                                            const Hypervector& tie_break) const {
  const std::size_t grams = ngram_count(trial.size());
  require(grams >= 1, "FusedTrialEncoder::encode_query: trial shorter than N-gram window");
  require(tie_break.dim() == dim(), "FusedTrialEncoder::encode_query: tie-break dim mismatch");
  const kernels::Backend& backend = kernels::active_backend();
  FusedArena& arena = fused_arena();
  arena.counters.reset(words_for_dim(dim()), grams);
  for_each_ngram(trial, [&](const Hypervector& gram) {
    arena.counters.add(backend, gram.words().data());
  });
  Hypervector out(dim());
  // N-gram padding bits are zero, their counters stay zero, and zero never
  // exceeds the threshold; the tie-break's padding is zero too, so the
  // all-counts-zero grams == 1 readout (threshold 0, odd, no tie) and every
  // other shape keep the padding invariant.
  arena.counters.majority(backend, tie_break.words().data(), out.mutable_words().data());
  return out;
}

std::vector<Hypervector> FusedTrialEncoder::encode_ngrams(
    std::span<const std::vector<float>> trial) const {
  std::vector<Hypervector> out;
  const std::size_t grams = ngram_count(trial.size());
  if (grams == 0) return out;
  out.reserve(grams);
  for_each_ngram(trial, [&](const Hypervector& gram) { out.push_back(gram); });
  return out;
}

}  // namespace pulphd::hd
