// Integer (non-binarized) associative memory — a standard HD computing
// extension the paper's prototype thresholding leaves on the table.
//
// The binary AM thresholds each class accumulator into a single bit per
// component, discarding the vote counts. Keeping the integer accumulators
// and classifying by the best normalized dot-product against the bipolar
// query retains that information at the cost of wider memory (the
// trade-off quantified by bench_ablation_intam). Known in the literature
// as "non-binarized" or "integer" HD models; the AM footprint grows from
// D/8 to D*2 bytes per class (int16 saturating counters).
#pragma once

#include <cstdint>
#include <vector>

#include "hd/associative_memory.hpp"
#include "hd/hypervector.hpp"

namespace pulphd::hd {

class IntegerAssociativeMemory {
 public:
  IntegerAssociativeMemory(std::size_t classes, std::size_t dim);

  std::size_t classes() const noexcept { return counters_.size(); }
  std::size_t dim() const noexcept { return dim_; }

  /// Adds an encoded example: components vote +1 (bit set) or -1 into the
  /// class's bipolar counters, saturating at int16 rails.
  void train(std::size_t label, const Hypervector& encoded);
  void train_batch(std::size_t label, std::span<const Hypervector> encoded);

  bool is_trained() const noexcept;

  /// Classification score: sum over components of counter * (+-1 per query
  /// bit), normalized by the class's L2 norm so heavily-trained classes do
  /// not dominate. Highest score wins (ties -> lowest label).
  AmDecision classify(const Hypervector& query) const;

  /// Batched classification: one decision per query, identical to calling
  /// `classify` on each, with the per-class L2 norms computed once for the
  /// whole batch instead of once per query.
  ///
  /// `threads` shards the queries across the shared host thread pool (each
  /// query's decision is independent, so any thread count is bit-identical).
  /// 1 = serial on the caller, 0 = one shard per hardware thread.
  std::vector<AmDecision> classify_batch(std::span<const Hypervector> queries,
                                         std::size_t threads = 1) const;

  /// Thresholds the counters into a plain binary AM prototype (sign bit) —
  /// for comparing both read-outs from identical training.
  Hypervector binarized_prototype(std::size_t label) const;

  std::size_t examples(std::size_t label) const;

  /// int16 counter matrix footprint (classes x dim x 2 bytes).
  std::size_t footprint_bytes() const noexcept {
    return counters_.size() * dim_ * sizeof(std::int16_t);
  }

 private:
  AmDecision classify_with_norms(const Hypervector& query,
                                 std::span<const double> inv_norms) const;
  std::vector<double> inverse_norms() const;

  std::size_t dim_;
  std::vector<std::vector<std::int16_t>> counters_;
  std::vector<std::size_t> counts_;
};

}  // namespace pulphd::hd
