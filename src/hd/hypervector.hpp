// Packed binary hypervector.
//
// The fundamental data type of HD computing as used by the paper: a D-bit
// binary vector with (pseudo)random i.i.d. components, packed 32 components
// per unsigned 32-bit word ("we directly map 32 consecutive binary
// components of a hypervector to an unsigned integer variable with 32 bits",
// §3). For the paper's D = 10,000 this gives 313 words per hypervector.
//
// Invariant: the padding bits beyond `dim()` in the last word are always
// zero. All operations preserve this; it makes Hamming distance and
// popcount straightforward word-wise reductions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace pulphd::hd {

class Hypervector {
 public:
  /// Creates an all-zero hypervector of `dim` components. dim must be >= 1.
  explicit Hypervector(std::size_t dim);

  /// Creates a hypervector from pre-packed words (low bit of words[0] is
  /// component 0). Padding bits must be zero; enforced by clearing them.
  Hypervector(std::size_t dim, std::vector<Word> words);

  /// Uniformly random hypervector: every component is an independent fair
  /// coin flip — the paper's "equal number of randomly placed 1s and 0s" in
  /// expectation. This is how IM seed vectors are drawn.
  static Hypervector random(std::size_t dim, Xoshiro256StarStar& rng);

  /// Random hypervector with *exactly* floor(dim/2) ones (dense binary code
  /// with exact balance); used where exact balance matters in tests.
  static Hypervector random_balanced(std::size_t dim, Xoshiro256StarStar& rng);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t word_count() const noexcept { return words_.size(); }

  std::span<const Word> words() const noexcept { return words_; }
  std::span<Word> mutable_words() noexcept { return words_; }

  bool bit(std::size_t i) const;
  void set_bit(std::size_t i, bool value);
  void flip_bit(std::size_t i);

  /// Number of components equal to 1.
  std::size_t popcount() const noexcept;

  /// Hamming distance to `other`; both must have equal dim.
  std::size_t hamming(const Hypervector& other) const;

  /// Normalized Hamming distance in [0, 1] (0 = identical, ~0.5 = orthogonal).
  double normalized_hamming(const Hypervector& other) const;

  /// Componentwise XOR — HD multiplication / binding.
  Hypervector operator^(const Hypervector& other) const;
  Hypervector& operator^=(const Hypervector& other);

  /// Componentwise NOT (with padding kept zero).
  Hypervector operator~() const;

  /// Rotates all components left by `k` positions (the paper's permutation
  /// rho^k: component i of the result is component (i + k) mod dim of the
  /// input... see ops.hpp for orientation discussion).
  Hypervector rotated(std::size_t k) const;

  /// Writes this hypervector rotated by `k` into `dst`, reusing dst's word
  /// buffer — the allocation-free form of rotated() that the temporal
  /// encoders' inner loops run on. dst must have the same dim and must not
  /// alias *this.
  void rotate_into(Hypervector& dst, std::size_t k) const;

  /// Zeroes any set padding bits; exposed for deserialization paths.
  void clear_padding() noexcept;

  /// "0101..." string of the first `max_bits` components (debugging aid).
  std::string to_string(std::size_t max_bits = 64) const;

  friend bool operator==(const Hypervector& a, const Hypervector& b) = default;

 private:
  std::size_t dim_;
  std::vector<Word> words_;
};

}  // namespace pulphd::hd
