// Classification quality metrics shared by the accuracy experiments.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pulphd::hd {

/// Row-major confusion matrix: entry (true_label, predicted_label).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes);

  void record(std::size_t true_label, std::size_t predicted_label);

  std::size_t classes() const noexcept { return classes_; }
  std::size_t at(std::size_t true_label, std::size_t predicted_label) const;
  std::size_t total() const noexcept { return total_; }

  /// Fraction of diagonal entries; 0 when nothing was recorded.
  double accuracy() const noexcept;

  /// Per-class recall (correct / occurrences of that true label; 0 if unseen).
  std::vector<double> recall() const;

  /// Human-readable rendering with optional class names.
  std::string to_string(const std::vector<std::string>& class_names = {}) const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::size_t correct_ = 0;
  std::vector<std::size_t> cells_;
};

/// Mean of a vector of accuracies (e.g. across subjects), as the paper's
/// "mean classification accuracy of gestures among five subjects".
double mean(const std::vector<double>& values);

/// Sample standard deviation (N-1 normalization); 0 for fewer than 2 values.
double stddev(const std::vector<double>& values);

}  // namespace pulphd::hd
