#include "hd/serialization.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/io.hpp"
#include "common/status.hpp"

namespace pulphd::hd {
namespace {

constexpr std::uint32_t kMagic = 0x31444850u;  // "PHD1" little-endian
constexpr std::uint32_t kVersionNameless = 1;  // pre-name streams, still loadable
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kMaxNameLen = 64;

// Upper bounds on header fields, checked before any allocation. A corrupt or
// hostile stream otherwise dictates the allocation size directly — and a dim
// near SIZE_MAX overflows words_for_dim to 0, which would hand Hypervector an
// empty word vector for a nonzero dim. The caps are far above any real model
// (paper: D = 10,000, 4 channels, 22 levels, 5 classes).
constexpr std::uint64_t kMaxDim = 1ull << 24;
constexpr std::uint64_t kMaxRows = 1ull << 16;     // channels / levels / classes
constexpr std::uint64_t kMaxNgram = 1ull << 16;

void check_header_field(std::uint64_t value, std::uint64_t max, const char* name) {
  if (value > max) {
    throw std::runtime_error(std::string("load_model: header field ") + name +
                             " out of range (" + std::to_string(value) + ")");
  }
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_model: truncated stream");
  return value;
}

void write_matrix(std::ostream& out, const std::vector<Hypervector>& rows) {
  for (const auto& hv : rows) {
    for (const Word w : hv.words()) write_pod(out, w);
  }
}

std::vector<Hypervector> read_matrix(std::istream& in, std::size_t rows, std::size_t dim) {
  std::vector<Hypervector> out;
  out.reserve(rows);
  const std::size_t words = words_for_dim(dim);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Word> row(words);
    for (auto& w : row) w = read_pod<Word>(in);
    out.emplace_back(dim, std::move(row));
  }
  return out;
}

}  // namespace

bool is_valid_model_name(const std::string& name) {
  if (name.empty() || name.size() > kMaxNameLen) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void save_model(const HdClassifier& clf, std::ostream& out, const std::string& name) {
  if (!name.empty() && !is_valid_model_name(name)) {
    throw std::runtime_error("save_model: invalid model name \"" + name +
                             "\" (want 1..64 chars of [A-Za-z0-9._-])");
  }
  const ClassifierConfig& cfg = clf.config();
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod<std::uint64_t>(out, cfg.dim);
  write_pod<std::uint64_t>(out, cfg.channels);
  write_pod<std::uint64_t>(out, cfg.levels);
  write_pod<double>(out, cfg.min_value);
  write_pod<double>(out, cfg.max_value);
  write_pod<std::uint64_t>(out, cfg.ngram);
  write_pod<std::uint64_t>(out, cfg.classes);
  write_pod<std::uint64_t>(out, cfg.seed);
  write_pod<std::uint64_t>(out, name.size());
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  write_matrix(out, clf.im().items());
  write_matrix(out, clf.cim().items());
  write_matrix(out, clf.am().prototypes());
  if (!out) throw std::runtime_error("save_model: stream write failed");
}

void save_model_file(const HdClassifier& clf, const std::string& path, const std::string& name) {
  // Serialize fully in memory, then publish crash-safely: the bytes land
  // under a temp sibling and only an fsynced rename exposes them, so a
  // crash (or injected ENOSPC/EIO/short write) at any point leaves either
  // the previous complete checkpoint or the new one — never a torn file.
  // A leftover "<path>.tmp" orphan is inert: loaders only ever open `path`,
  // and the next save removes it.
  std::ostringstream buf(std::ios::binary);
  save_model(clf, buf, name);
  try {
    io::atomic_write_file(path, buf.view());
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("save_model_file: ") + e.what());
  }
}

ClassifierModel load_model(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kMagic) throw std::runtime_error("load_model: bad magic");
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersionNameless && version != kVersion) {
    throw std::runtime_error("load_model: unsupported version " + std::to_string(version));
  }
  ClassifierModel model;
  const auto dim = read_pod<std::uint64_t>(in);
  const auto channels = read_pod<std::uint64_t>(in);
  const auto levels = read_pod<std::uint64_t>(in);
  model.config.min_value = read_pod<double>(in);
  model.config.max_value = read_pod<double>(in);
  const auto ngram = read_pod<std::uint64_t>(in);
  const auto classes = read_pod<std::uint64_t>(in);
  model.config.seed = read_pod<std::uint64_t>(in);
  if (version >= 2) {
    const auto name_len = read_pod<std::uint64_t>(in);
    check_header_field(name_len, kMaxNameLen, "name_len");
    if (name_len > 0) {
      model.name.resize(static_cast<std::size_t>(name_len));
      in.read(model.name.data(), static_cast<std::streamsize>(name_len));
      if (!in) throw std::runtime_error("load_model: truncated stream");
      if (!is_valid_model_name(model.name)) {
        throw std::runtime_error("load_model: embedded model name is not a valid token");
      }
    }
  }
  check_header_field(dim, kMaxDim, "dim");
  check_header_field(channels, kMaxRows, "channels");
  check_header_field(levels, kMaxRows, "levels");
  check_header_field(ngram, kMaxNgram, "ngram");
  check_header_field(classes, kMaxRows, "classes");
  model.config.dim = static_cast<std::size_t>(dim);
  model.config.channels = static_cast<std::size_t>(channels);
  model.config.levels = static_cast<std::size_t>(levels);
  model.config.ngram = static_cast<std::size_t>(ngram);
  model.config.classes = static_cast<std::size_t>(classes);
  model.config.validate();
  model.im = read_matrix(in, model.config.channels, model.config.dim);
  model.cim = read_matrix(in, model.config.levels, model.config.dim);
  model.am = read_matrix(in, model.config.classes, model.config.dim);
  return model;
}

ClassifierModel load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_model_file: cannot open " + path);
  try {
    return load_model(in);
  } catch (const std::exception& e) {
    // A registry loads many per-subject models in one startup; an anonymous
    // "bad magic" is useless without the file it came from.
    throw std::runtime_error("load_model_file: " + path + ": " + e.what());
  }
}

HdClassifier classifier_from_model(const ClassifierModel& model) {
  // Rebuild with the stored seed so encoders exist, then overwrite the
  // matrices with the deserialized contents. Note: HdClassifier's members
  // reference its own IM/CIM, so we construct and then patch via the public
  // loading API where available. IM/CIM are identical when the seed matches;
  // if the stream carries foreign matrices we rebuild from them directly.
  HdClassifier clf(model.config);
  const bool seeds_match = clf.im().items() == model.im && clf.cim().items() == model.cim;
  check_invariant(seeds_match,
                  "classifier_from_model: IM/CIM matrices disagree with the config seed; "
                  "the model stream is inconsistent");
  clf.mutable_am().load_prototypes(model.am);
  return clf;
}

}  // namespace pulphd::hd
