// End-to-end HD classifier: CIM/IM mapping -> spatial encoder -> temporal
// encoder -> associative memory, exactly the processing chain of Fig. 1.
//
// This is the host-side golden model ("implement and validate ... on MATLAB
// to establish a golden model to follow", §4.1). The simulated PULP kernels
// in src/kernels reproduce its outputs bit-exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hd/associative_memory.hpp"
#include "hd/encoder.hpp"
#include "hd/item_memory.hpp"

namespace pulphd::hd {

/// One time-aligned multichannel sample (one physical value per channel).
using Sample = std::vector<float>;
/// A trial: consecutive samples of one labeled event (e.g. one 3 s gesture).
using Trial = std::vector<Sample>;

struct ClassifierConfig {
  std::size_t dim = 10000;       ///< hypervector dimensionality D
  std::size_t channels = 4;      ///< input channels (EMG electrodes)
  std::size_t levels = 22;       ///< CIM quantization levels (EMG: 0..21 mV)
  double min_value = 0.0;        ///< CIM range lower endpoint
  double max_value = 21.0;       ///< CIM range upper endpoint
  std::size_t ngram = 1;         ///< temporal window N (EMG: 1, EEG: up to 29)
  std::size_t classes = 5;       ///< output classes (4 gestures + rest)
  std::uint64_t seed = 0x9d1feed5ULL;  ///< master seed
  /// Host threads for the batch encode/classify paths (a runtime knob, not
  /// part of the model — never serialized). 1 = serial, 0 = one per
  /// hardware thread. Any value yields bit-identical results.
  std::size_t threads = 1;
  /// Routes trial encoding through the fused single-pass pipeline (spatial
  /// encode -> sliding N-gram recurrence -> bit-sliced counter bundling).
  /// A runtime knob like `threads`, never serialized; both settings yield
  /// bit-identical hypervectors — false keeps the legacy sample-at-a-time
  /// chain for A/B tests and benches.
  bool fused = true;

  /// Validates ranges; throws std::invalid_argument on nonsense.
  void validate() const;
};

/// Aggregate memory footprint of the trained model matrices, in bytes —
/// the quantity plotted as the red line of Fig. 5.
struct ModelFootprint {
  std::size_t im_bytes = 0;
  std::size_t cim_bytes = 0;
  std::size_t am_bytes = 0;
  std::size_t spatial_buffer_bytes = 0;   // one hypervector (L1 scratch)
  std::size_t ngram_buffer_bytes = 0;     // N spatial HVs + 1 N-gram HV

  std::size_t total() const noexcept {
    return im_bytes + cim_bytes + am_bytes + spatial_buffer_bytes + ngram_buffer_bytes;
  }
};

class HdClassifier {
 public:
  explicit HdClassifier(const ClassifierConfig& config);

  /// The classifier owns its IM/CIM and `spatial_`/`fused_` are views into
  /// them, so the compiler-generated copy/move would leave the destination's
  /// encoders pointing into the source object (a dangling pointer once the
  /// source dies — e.g. a classifier moved into a model registry). These
  /// rebind the encoder views onto the destination's own memories.
  HdClassifier(const HdClassifier& other);
  HdClassifier(HdClassifier&& other) noexcept;
  HdClassifier& operator=(const HdClassifier& other);
  HdClassifier& operator=(HdClassifier&& other) noexcept;

  const ClassifierConfig& config() const noexcept { return config_; }

  /// Adjusts the host-thread knob after construction (e.g. for models
  /// rebuilt from a serialized stream, which never carries it).
  void set_threads(std::size_t threads) noexcept { config_.threads = threads; }
  /// Toggles the fused trial-encode pipeline (bit-identical either way).
  void set_fused(bool fused) noexcept { config_.fused = fused; }
  const ItemMemory& im() const noexcept { return im_; }
  const ContinuousItemMemory& cim() const noexcept { return cim_; }
  const AssociativeMemory& am() const noexcept { return am_; }
  AssociativeMemory& mutable_am() noexcept { return am_; }
  const SpatialEncoder& spatial_encoder() const noexcept { return spatial_; }

  /// Encodes a trial into its sequence of N-gram hypervectors (one per
  /// complete window; empty when the trial is shorter than N).
  std::vector<Hypervector> encode_trial(const Trial& trial) const;

  /// Bundles a trial's N-gram hypervectors into a single query hypervector
  /// — how both prototypes and queries are formed "in an identical way"
  /// (§2.1.1). Throws when the trial is shorter than N samples.
  Hypervector encode_query(const Trial& trial) const;

  /// Accumulates a labeled trial into the AM (each N-gram of the trial is
  /// added to the class accumulator, as in the paper's training).
  void train(const Trial& trial, std::size_t label);

  /// Classifies a trial via its bundled query hypervector.
  AmDecision predict(const Trial& trial) const;

  /// Classifies a single already-encoded query.
  AmDecision predict_encoded(const Hypervector& query) const { return am_.classify(query); }

  /// Encodes many trials to their query hypervectors, sharding the trials
  /// across `config().threads` host threads (encoding dominates the
  /// inference cost, and trials are independent). Result i matches
  /// encode_query(trials[i]); throws when any trial is shorter than N.
  std::vector<Hypervector> encode_trials(std::span<const Trial> trials) const;

  /// Batched classification of many trials: the trials are encoded in
  /// parallel by encode_trials, then all queries go through the AM's
  /// word-parallel batch kernel, likewise sharded across config().threads.
  /// Result i matches predict(trials[i]) for any thread count.
  std::vector<AmDecision> predict_batch(std::span<const Trial> trials) const;

  /// Batched classification of already-encoded queries.
  std::vector<AmDecision> predict_encoded_batch(std::span<const Hypervector> queries) const {
    return am_.classify_batch(queries, config_.threads);
  }

  /// The seed-derived tie-break row used when bundling a query's N-grams
  /// (even gram counts only) — the one StreamingEncoder must share to stay
  /// bit-identical with encode_query.
  const Hypervector& query_tie_break() const noexcept { return query_tie_break_; }

  /// Builds a streaming session encoder bound to this model's spatial
  /// encoder, N-gram depth, and query tie-break. Its per-window queries are
  /// bit-identical to encode_query over the equivalent buffered slices, so
  /// predict_encoded on them matches predict_batch. The classifier must
  /// outlive the returned encoder (servers pin the model snapshot for the
  /// session's lifetime).
  StreamingEncoder make_streaming_encoder() const {
    return StreamingEncoder(spatial_, config_.ngram, query_tie_break_);
  }

  ModelFootprint footprint() const noexcept;

 private:
  ClassifierConfig config_;
  ItemMemory im_;
  ContinuousItemMemory cim_;
  SpatialEncoder spatial_;
  FusedTrialEncoder fused_;
  AssociativeMemory am_;
  Hypervector query_tie_break_;
};

}  // namespace pulphd::hd
