#include "hd/noise.hpp"

#include <numeric>
#include <vector>

#include "common/status.hpp"

namespace pulphd::hd {

Hypervector with_bit_flips(const Hypervector& hv, std::size_t flips, Xoshiro256StarStar& rng) {
  require(flips <= hv.dim(), "with_bit_flips: more flips than components");
  Hypervector out = hv;
  // Partial Fisher–Yates over component indices: the first `flips` entries
  // are a uniform sample without replacement.
  std::vector<std::uint32_t> indices(hv.dim());
  std::iota(indices.begin(), indices.end(), 0u);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.next_below(hv.dim() - i));
    std::swap(indices[i], indices[j]);
    out.flip_bit(indices[i]);
  }
  return out;
}

Hypervector with_bit_error_rate(const Hypervector& hv, double p, Xoshiro256StarStar& rng) {
  require(p >= 0.0 && p <= 1.0, "with_bit_error_rate: p must be in [0, 1]");
  Hypervector out = hv;
  for (std::size_t i = 0; i < hv.dim(); ++i) {
    if (rng.next_bernoulli(p)) out.flip_bit(i);
  }
  return out;
}

Hypervector truncated(const Hypervector& hv, std::size_t new_dim) {
  require(new_dim >= 1 && new_dim <= hv.dim(), "truncated: bad target dimension");
  Hypervector out(new_dim);
  for (std::size_t i = 0; i < new_dim; ++i) {
    if (hv.bit(i)) out.set_bit(i, true);
  }
  return out;
}

AssociativeMemory am_with_faults(const AssociativeMemory& am, double p, std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  AssociativeMemory out(am.classes(), am.dim(), seed);
  std::vector<Hypervector> faulty;
  faulty.reserve(am.classes());
  for (std::size_t c = 0; c < am.classes(); ++c) {
    faulty.push_back(with_bit_error_rate(am.prototype(c), p, rng));
  }
  out.load_prototypes(std::move(faulty));
  return out;
}

}  // namespace pulphd::hd
