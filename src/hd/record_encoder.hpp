// Record (role-filler) encoding — the HD data structure behind the
// multimodal-fusion applications the paper's introduction cites:
// "categorization of body physical activities from several heterogeneous
// sensors" [23] and "predicting behavior of mobile-device users" [24].
//
// A record binds each field's *role* hypervector (from an IM over field
// names) with its *filler* (the encoded value) and bundles the pairs:
//
//   R = [ (role_1 * filler_1) + (role_2 * filler_2) + ... ]
//
// Because binding is invertible, probing R with a role recovers a noisy
// version of its filler: unbind(R, role_i) ~ filler_i — enabling the
// "associations, form hierarchies" cognitive operations of §1.
#pragma once

#include <cstdint>
#include <vector>

#include "hd/item_memory.hpp"
#include "hd/ops.hpp"

namespace pulphd::hd {

class RecordEncoder {
 public:
  /// `fields` is the number of roles; roles are drawn i.i.d. from `seed`.
  RecordEncoder(std::size_t fields, std::size_t dim, std::uint64_t seed);

  std::size_t fields() const noexcept { return roles_.size(); }
  std::size_t dim() const noexcept { return roles_.dim(); }

  const Hypervector& role(std::size_t field) const { return roles_.at(field); }

  /// Encodes a full record. `fillers.size()` must equal `fields()`; each
  /// filler must have the encoder's dimension. Even field counts append the
  /// same reproducible tie-break operand as the spatial encoder.
  Hypervector encode(std::span<const Hypervector> fillers) const;

  /// Encodes a partial record from (field, filler) pairs (at least one).
  Hypervector encode_partial(
      std::span<const std::pair<std::size_t, const Hypervector*>> bound_fields) const;

  /// Recovers the (noisy) filler stored under `field`: R * role_field.
  /// Compare against a codebook with `hamming_to_all` to decode.
  Hypervector probe(const Hypervector& record, std::size_t field) const;

  /// Decodes a probed filler against a codebook: index of the closest
  /// codebook entry and its normalized distance.
  struct Decoded {
    std::size_t index = 0;
    double distance = 0.5;
  };
  Decoded decode(const Hypervector& record, std::size_t field,
                 std::span<const Hypervector> codebook) const;

 private:
  ItemMemory roles_;
};

}  // namespace pulphd::hd
