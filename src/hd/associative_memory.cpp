#include "hd/associative_memory.hpp"

#include <algorithm>
#include <limits>

#include "common/status.hpp"

namespace pulphd::hd {

double AmDecision::margin(std::size_t dim) const {
  if (distances.size() < 2 || dim == 0) return 0.0;
  std::size_t best = distances[label];
  std::size_t runner_up = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < distances.size(); ++i) {
    if (i == label) continue;
    runner_up = std::min(runner_up, distances[i]);
  }
  return static_cast<double>(runner_up - best) / static_cast<double>(dim);
}

AssociativeMemory::AssociativeMemory(std::size_t classes, std::size_t dim,
                                     std::uint64_t tie_break_seed)
    : dim_(dim), tie_break_(dim) {
  require(classes >= 1, "AssociativeMemory: classes must be >= 1");
  require(dim >= 1, "AssociativeMemory: dim must be >= 1");
  Xoshiro256StarStar rng(tie_break_seed);
  tie_break_ = Hypervector::random(dim, rng);
  accumulators_.assign(classes, BundleAccumulator(dim));
  prototypes_.assign(classes, Hypervector(dim));
}

void AssociativeMemory::train(std::size_t label, const Hypervector& encoded) {
  require(label < accumulators_.size(), "AssociativeMemory::train: label out of range");
  require(encoded.dim() == dim_, "AssociativeMemory::train: dimension mismatch");
  accumulators_[label].add(encoded);
  refresh_prototype(label);
}

void AssociativeMemory::train_batch(std::size_t label, std::span<const Hypervector> encoded) {
  require(label < accumulators_.size(), "AssociativeMemory::train_batch: label out of range");
  for (const auto& hv : encoded) {
    require(hv.dim() == dim_, "AssociativeMemory::train_batch: dimension mismatch");
    accumulators_[label].add(hv);
  }
  if (!encoded.empty()) refresh_prototype(label);
}

bool AssociativeMemory::is_trained() const noexcept {
  return std::all_of(accumulators_.begin(), accumulators_.end(),
                     [](const BundleAccumulator& acc) { return acc.count() > 0; });
}

AmDecision AssociativeMemory::classify(const Hypervector& query) const {
  check_invariant(is_trained(), "AssociativeMemory::classify: untrained classes present");
  require(query.dim() == dim_, "AssociativeMemory::classify: dimension mismatch");
  AmDecision decision;
  decision.distances = hamming_to_all(query, prototypes_);
  const auto best =
      std::min_element(decision.distances.begin(), decision.distances.end());
  decision.label = static_cast<std::size_t>(best - decision.distances.begin());
  decision.distance = *best;
  return decision;
}

const Hypervector& AssociativeMemory::prototype(std::size_t label) const {
  require(label < prototypes_.size(), "AssociativeMemory::prototype: label out of range");
  return prototypes_[label];
}

std::size_t AssociativeMemory::examples(std::size_t label) const {
  require(label < accumulators_.size(), "AssociativeMemory::examples: label out of range");
  return accumulators_[label].count();
}

void AssociativeMemory::load_prototypes(std::vector<Hypervector> prototypes) {
  require(prototypes.size() == prototypes_.size(),
          "AssociativeMemory::load_prototypes: class count mismatch");
  for (std::size_t c = 0; c < prototypes.size(); ++c) {
    require(prototypes[c].dim() == dim_,
            "AssociativeMemory::load_prototypes: dimension mismatch");
    accumulators_[c].reset();
    accumulators_[c].add(prototypes[c]);
  }
  prototypes_ = std::move(prototypes);
}

std::size_t AssociativeMemory::footprint_bytes() const noexcept {
  return prototypes_.size() * words_for_dim(dim_) * sizeof(Word);
}

void AssociativeMemory::refresh_prototype(std::size_t label) {
  prototypes_[label] = accumulators_[label].finalize(tie_break_);
}

}  // namespace pulphd::hd
