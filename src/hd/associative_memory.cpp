#include "hd/associative_memory.hpp"

#include <algorithm>
#include <limits>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "kernels/primitives.hpp"

namespace pulphd::hd {

double AmDecision::margin(std::size_t dim) const {
  if (distances.size() < 2 || dim == 0) return 0.0;
  std::size_t best = distances[label];
  std::size_t runner_up = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < distances.size(); ++i) {
    if (i == label) continue;
    runner_up = std::min(runner_up, distances[i]);
  }
  return static_cast<double>(runner_up - best) / static_cast<double>(dim);
}

AssociativeMemory::AssociativeMemory(std::size_t classes, std::size_t dim,
                                     std::uint64_t tie_break_seed)
    : dim_(dim), tie_break_(dim) {
  require(classes >= 1, "AssociativeMemory: classes must be >= 1");
  require(dim >= 1, "AssociativeMemory: dim must be >= 1");
  Xoshiro256StarStar rng(tie_break_seed);
  tie_break_ = Hypervector::random(dim, rng);
  accumulators_.assign(classes, BundleAccumulator(dim));
  prototypes_.assign(classes, Hypervector(dim));
  packed_prototypes_.assign(classes * words_for_dim(dim), 0u);
}

void AssociativeMemory::train(std::size_t label, const Hypervector& encoded) {
  require(label < accumulators_.size(), "AssociativeMemory::train: label out of range");
  require(encoded.dim() == dim_, "AssociativeMemory::train: dimension mismatch");
  accumulators_[label].add(encoded);
  refresh_prototype(label);
}

void AssociativeMemory::train_batch(std::size_t label, std::span<const Hypervector> encoded) {
  require(label < accumulators_.size(), "AssociativeMemory::train_batch: label out of range");
  for (const auto& hv : encoded) {
    require(hv.dim() == dim_, "AssociativeMemory::train_batch: dimension mismatch");
    accumulators_[label].add(hv);
  }
  if (!encoded.empty()) refresh_prototype(label);
}

bool AssociativeMemory::is_trained() const noexcept {
  return std::all_of(accumulators_.begin(), accumulators_.end(),
                     [](const BundleAccumulator& acc) { return acc.count() > 0; });
}

std::vector<AmDecision> AssociativeMemory::classify_batch(std::span<const Hypervector> queries,
                                                          std::size_t threads) const {
  check_invariant(is_trained(), "AssociativeMemory::classify_batch: untrained classes present");
  // The batch kernel's distance matrix is uint32; a distance can reach dim,
  // so wider dimensions must take the per-query size_t path.
  require(dim_ <= std::numeric_limits<std::uint32_t>::max(),
          "AssociativeMemory::classify_batch: dim exceeds the uint32 distance range");
  const std::size_t words = words_for_dim(dim_);
  const std::size_t classes = prototypes_.size();
  std::vector<Word> packed_queries(queries.size() * words);
  std::vector<std::uint32_t> matrix(queries.size() * classes);
  std::vector<AmDecision> decisions(queries.size());
  // One fork-join over query rows: each shard packs, measures and decides
  // only its own rows — disjoint slices of the three buffers above — so the
  // result is bit-identical for any thread count.
  parallel_shards(threads, queries.size(), [&](std::size_t q_begin, std::size_t q_end) {
    for (std::size_t q = q_begin; q < q_end; ++q) {
      require(queries[q].dim() == dim_,
              "AssociativeMemory::classify_batch: dimension mismatch");
      std::copy(queries[q].words().begin(), queries[q].words().end(),
                packed_queries.begin() + static_cast<std::ptrdiff_t>(q * words));
    }
    const std::size_t rows = q_end - q_begin;
    kernels::hamming_distance_matrix(
        std::span<const Word>(packed_queries).subspan(q_begin * words, rows * words),
        packed_prototypes_, rows, classes, words,
        std::span<std::uint32_t>(matrix).subspan(q_begin * classes, rows * classes));
    for (std::size_t q = q_begin; q < q_end; ++q) {
      AmDecision& decision = decisions[q];
      decision.distances.assign(matrix.begin() + static_cast<std::ptrdiff_t>(q * classes),
                                matrix.begin() + static_cast<std::ptrdiff_t>((q + 1) * classes));
      const auto best = std::min_element(decision.distances.begin(), decision.distances.end());
      decision.label = static_cast<std::size_t>(best - decision.distances.begin());
      decision.distance = *best;
    }
  });
  return decisions;
}

AmDecision AssociativeMemory::classify(const Hypervector& query) const {
  check_invariant(is_trained(), "AssociativeMemory::classify: untrained classes present");
  require(query.dim() == dim_, "AssociativeMemory::classify: dimension mismatch");
  AmDecision decision;
  decision.distances = hamming_to_all(query, prototypes_);
  const auto best =
      std::min_element(decision.distances.begin(), decision.distances.end());
  decision.label = static_cast<std::size_t>(best - decision.distances.begin());
  decision.distance = *best;
  return decision;
}

const Hypervector& AssociativeMemory::prototype(std::size_t label) const {
  require(label < prototypes_.size(), "AssociativeMemory::prototype: label out of range");
  return prototypes_[label];
}

std::size_t AssociativeMemory::examples(std::size_t label) const {
  require(label < accumulators_.size(), "AssociativeMemory::examples: label out of range");
  return accumulators_[label].count();
}

void AssociativeMemory::load_prototypes(std::vector<Hypervector> prototypes) {
  require(prototypes.size() == prototypes_.size(),
          "AssociativeMemory::load_prototypes: class count mismatch");
  for (std::size_t c = 0; c < prototypes.size(); ++c) {
    require(prototypes[c].dim() == dim_,
            "AssociativeMemory::load_prototypes: dimension mismatch");
    accumulators_[c].reset();
    accumulators_[c].add(prototypes[c]);
  }
  prototypes_ = std::move(prototypes);
  for (std::size_t c = 0; c < prototypes_.size(); ++c) repack_prototype(c);
}

std::size_t AssociativeMemory::footprint_bytes() const noexcept {
  return prototypes_.size() * words_for_dim(dim_) * sizeof(Word);
}

void AssociativeMemory::refresh_prototype(std::size_t label) {
  prototypes_[label] = accumulators_[label].finalize(tie_break_);
  repack_prototype(label);
}

void AssociativeMemory::repack_prototype(std::size_t label) {
  const auto words = prototypes_[label].words();
  std::copy(words.begin(), words.end(),
            packed_prototypes_.begin() +
                static_cast<std::ptrdiff_t>(label * words_for_dim(dim_)));
}

}  // namespace pulphd::hd
