#include "emg/filters.hpp"

#include <cmath>

#include "common/status.hpp"

namespace pulphd::emg {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kRectifiedGaussianGain = 1.2533141373155003;  // sqrt(pi/2)
}  // namespace

Biquad::Biquad(double b0, double b1, double b2, double a0, double a1, double a2)
    : b0_(b0 / a0), b1_(b1 / a0), b2_(b2 / a0), a1_(a1 / a0), a2_(a2 / a0) {
  require(a0 != 0.0, "Biquad: a0 must be nonzero");
}

Biquad Biquad::notch(double sample_rate_hz, double freq_hz, double q) {
  require(sample_rate_hz > 0 && freq_hz > 0 && freq_hz < sample_rate_hz / 2,
          "Biquad::notch: frequency must be in (0, Nyquist)");
  require(q > 0, "Biquad::notch: q must be positive");
  const double w0 = 2.0 * kPi * freq_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  return Biquad(1.0, -2.0 * cw, 1.0, 1.0 + alpha, -2.0 * cw, 1.0 - alpha);
}

Biquad Biquad::lowpass(double sample_rate_hz, double freq_hz) {
  require(sample_rate_hz > 0 && freq_hz > 0 && freq_hz < sample_rate_hz / 2,
          "Biquad::lowpass: frequency must be in (0, Nyquist)");
  const double w0 = 2.0 * kPi * freq_hz / sample_rate_hz;
  const double q = 1.0 / std::sqrt(2.0);  // Butterworth alignment
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double b1 = 1.0 - cw;
  return Biquad(b1 / 2.0, b1, b1 / 2.0, 1.0 + alpha, -2.0 * cw, 1.0 - alpha);
}

float Biquad::process(float x) noexcept {
  const double xd = static_cast<double>(x);
  const double y = b0_ * xd + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = xd;
  y2_ = y1_;
  y1_ = y;
  return static_cast<float>(y);
}

void Biquad::reset() noexcept { x1_ = x2_ = y1_ = y2_ = 0.0; }

std::vector<float> Biquad::process_signal(std::span<const float> signal) {
  std::vector<float> out;
  out.reserve(signal.size());
  for (const float x : signal) out.push_back(process(x));
  return out;
}

EnvelopeExtractor::EnvelopeExtractor(double sample_rate_hz, double cutoff_hz)
    : lowpass_(Biquad::lowpass(sample_rate_hz, cutoff_hz)) {}

std::vector<float> EnvelopeExtractor::extract(std::span<const float> signal) {
  lowpass_.reset();
  std::vector<float> out;
  out.reserve(signal.size());
  for (const float x : signal) {
    const float rectified = std::fabs(x);
    const float smoothed = lowpass_.process(rectified);
    out.push_back(static_cast<float>(smoothed * kRectifiedGaussianGain));
  }
  return out;
}

}  // namespace pulphd::emg
