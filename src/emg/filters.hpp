// IIR biquad filters and envelope extraction — the preprocessing block of
// Fig. 1 ("power line interference removal and envelope extraction", §3).
//
// The paper runs this block off-platform, so it contributes no cycles to
// the accelerator model; it exists to turn the synthetic raw EMG into the
// 0-21 mV amplitude envelopes the CIM quantizes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pulphd::emg {

/// Direct-form-I biquad: y = (b0 x + b1 x1 + b2 x2 - a1 y1 - a2 y2) / a0.
class Biquad {
 public:
  Biquad(double b0, double b1, double b2, double a0, double a1, double a2);

  /// RBJ-cookbook notch at `freq_hz` with quality factor `q`.
  static Biquad notch(double sample_rate_hz, double freq_hz, double q);

  /// RBJ-cookbook 2nd-order Butterworth-style low-pass at `freq_hz`.
  static Biquad lowpass(double sample_rate_hz, double freq_hz);

  float process(float x) noexcept;
  void reset() noexcept;

  /// Filters a whole signal (stateful; call reset() between signals).
  std::vector<float> process_signal(std::span<const float> signal);

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0, x2_ = 0, y1_ = 0, y2_ = 0;
};

/// Amplitude envelope: full-wave rectification followed by a 2nd-order
/// low-pass, with a gain correcting the rectified-Gaussian mean
/// (E|X| = sigma * sqrt(2/pi)) so the output tracks the modulating
/// amplitude rather than its rectified mean.
class EnvelopeExtractor {
 public:
  EnvelopeExtractor(double sample_rate_hz, double cutoff_hz);

  std::vector<float> extract(std::span<const float> signal);

 private:
  Biquad lowpass_;
};

}  // namespace pulphd::emg
