#include "emg/protocol.hpp"

#include "common/status.hpp"

namespace pulphd::emg {

hd::Trial active_segment(const hd::Trial& trial, const ProtocolConfig& config) {
  require(config.segment_begin >= 0.0 && config.segment_end <= 1.0 &&
              config.segment_begin < config.segment_end,
          "active_segment: bad segment bounds");
  require(config.hd_sample_stride >= 1, "active_segment: stride must be >= 1");
  const auto lo = static_cast<std::size_t>(config.segment_begin *
                                           static_cast<double>(trial.size()));
  const auto hi = static_cast<std::size_t>(config.segment_end *
                                           static_cast<double>(trial.size()));
  if (lo >= hi) {
    throw std::invalid_argument(
        "active_segment: trial of " + std::to_string(trial.size()) +
        " samples truncates to an empty segment [" + std::to_string(lo) + ", " +
        std::to_string(hi) + ") — trial too short for the protocol's segment bounds");
  }
  hd::Trial out;
  for (std::size_t i = lo; i < hi; i += config.hd_sample_stride) out.push_back(trial[i]);
  return out;
}

hd::HdClassifier train_hd_subject(const EmgDataset& dataset, const EmgDataset::Split& split,
                                  std::size_t dim, const ProtocolConfig& config) {
  hd::ClassifierConfig cfg;
  cfg.dim = dim;
  cfg.channels = dataset.config.channels;
  cfg.max_value = dataset.config.max_amplitude_mv;
  cfg.threads = config.threads;
  hd::HdClassifier clf(cfg);
  require(!split.train.empty(), "train_hd_subject: empty training split");
  for (const EmgTrial* trial : split.train) {
    clf.train(active_segment(trial->envelope, config), trial->label);
  }
  return clf;
}

hd::HdClassifier train_hd_subject(const EmgDataset& dataset, std::size_t subject,
                                  std::size_t dim, const ProtocolConfig& config) {
  return train_hd_subject(dataset, dataset.split(subject, config.train_fraction), dim,
                          config);
}

AccuracyResult evaluate_hd(const EmgDataset& dataset, std::size_t dim,
                           const ProtocolConfig& config) {
  AccuracyResult result;
  for (std::size_t s = 0; s < dataset.config.subjects; ++s) {
    // One split per subject, shared by training and testing (previously
    // computed twice), and one predict_batch over all test trials so the
    // paper-protocol evaluation runs the parallel batch encode + classify
    // path end to end.
    const EmgDataset::Split split = dataset.split(s, config.train_fraction);
    const hd::HdClassifier clf = train_hd_subject(dataset, split, dim, config);
    SubjectResult sr;
    sr.subject = s;
    std::vector<hd::Trial> segments;
    segments.reserve(split.test.size());
    for (const EmgTrial* trial : split.test) {
      segments.push_back(active_segment(trial->envelope, config));
    }
    const std::vector<hd::AmDecision> decisions = clf.predict_batch(segments);
    for (std::size_t t = 0; t < split.test.size(); ++t) {
      sr.confusion.record(split.test[t]->label, decisions[t].label);
    }
    sr.accuracy = sr.confusion.accuracy();
    result.subjects.push_back(std::move(sr));
  }
  std::vector<double> acc;
  acc.reserve(result.subjects.size());
  for (const auto& sr : result.subjects) acc.push_back(sr.accuracy);
  result.mean_accuracy = hd::mean(acc);
  return result;
}

svm::MulticlassSvm train_svm_subject(const EmgDataset& dataset, std::size_t subject,
                                     const svm::KernelConfig& kernel,
                                     const svm::SmoConfig& smo,
                                     const svm::WindowConfig& windows,
                                     const ProtocolConfig& config) {
  const EmgDataset::Split split = dataset.split(subject, config.train_fraction);
  require(!split.train.empty(), "train_svm_subject: empty training split");
  std::vector<const hd::Trial*> trials;
  std::vector<std::size_t> labels;
  for (const EmgTrial* trial : split.train) {
    trials.push_back(&trial->envelope);
    labels.push_back(trial->label);
  }
  const svm::TrainingSet set = svm::build_training_set(trials, labels, windows);
  return svm::MulticlassSvm::train(set.features, set.labels, kGestureCount, kernel, smo);
}

SvmAccuracyResult evaluate_svm(const EmgDataset& dataset, const svm::KernelConfig& kernel,
                               const svm::SmoConfig& smo, const svm::WindowConfig& windows,
                               const ProtocolConfig& config) {
  SvmAccuracyResult result;
  result.min_total_svs = ~std::size_t{0};
  double sv_per_machine_sum = 0.0;
  for (std::size_t s = 0; s < dataset.config.subjects; ++s) {
    const svm::MulticlassSvm model =
        train_svm_subject(dataset, s, kernel, smo, windows, config);
    SubjectResult sr;
    sr.subject = s;
    const EmgDataset::Split split = dataset.split(s, config.train_fraction);
    for (const EmgTrial* trial : split.test) {
      sr.confusion.record(trial->label,
                          svm::predict_trial(model, trial->envelope, windows));
    }
    sr.accuracy = sr.confusion.accuracy();
    result.subjects.push_back(std::move(sr));
    const std::size_t total = model.total_support_vectors();
    result.min_total_svs = std::min(result.min_total_svs, total);
    result.max_total_svs = std::max(result.max_total_svs, total);
    sv_per_machine_sum += static_cast<double>(total) /
                          static_cast<double>(model.machine_count());
  }
  std::vector<double> acc;
  acc.reserve(result.subjects.size());
  for (const auto& sr : result.subjects) acc.push_back(sr.accuracy);
  result.mean_accuracy = hd::mean(acc);
  result.mean_svs_per_machine =
      sv_per_machine_sum / static_cast<double>(dataset.config.subjects);
  return result;
}

}  // namespace pulphd::emg
