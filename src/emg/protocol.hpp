// The paper's evaluation protocol (§4.1), packaged for reuse by benches,
// examples and tests:
//
//  * per-subject models — "the model training is done per subject";
//  * train on the first 25% of each gesture's repetitions, test on the
//    entire dataset;
//  * HD: each trial's active segment is encoded sample-by-sample (strided —
//    the 4 Hz envelope is heavily oversampled at 500 Hz) and bundled into
//    one query hypervector;
//  * SVM: windowed mean features, trial label by majority vote of windows;
//  * report the mean accuracy over subjects.
#pragma once

#include <cstdint>
#include <vector>

#include "emg/dataset.hpp"
#include "hd/classifier.hpp"
#include "hd/metrics.hpp"
#include "svm/features.hpp"
#include "svm/svm.hpp"

namespace pulphd::emg {

struct ProtocolConfig {
  double train_fraction = 0.25;
  /// Active gesture segment, as fractions of the trial.
  double segment_begin = 0.25;
  double segment_end = 5.0 / 6.0;
  /// Sample stride for HD encoding (500 Hz / 16 ~= 31 Hz, still ~8x the
  /// envelope bandwidth).
  std::size_t hd_sample_stride = 16;
  /// Host threads for the batch encode/classify paths of the HD evaluation
  /// (forwarded into ClassifierConfig::threads; results are bit-identical
  /// for any value). 1 = serial, 0 = one per hardware thread.
  std::size_t threads = 1;
};

/// Active-segment, strided view of a trial used for HD encoding. Throws
/// std::invalid_argument when the segment bounds truncate the trial to an
/// empty segment (e.g. a trial far shorter than the protocol expects) —
/// failing here names the real problem instead of surfacing later as an
/// unrelated "trial shorter than N-gram window" error from the encoder.
hd::Trial active_segment(const hd::Trial& trial, const ProtocolConfig& config);

struct SubjectResult {
  std::size_t subject = 0;
  double accuracy = 0.0;
  hd::ConfusionMatrix confusion{kGestureCount};
};

struct AccuracyResult {
  std::vector<SubjectResult> subjects;
  double mean_accuracy = 0.0;
};

/// Trains one HD classifier per subject at dimensionality `dim` and
/// evaluates per-trial queries over the whole dataset. The test trials of
/// each subject are classified through HdClassifier::predict_batch, so the
/// evaluation exercises the parallel batch path when config.threads != 1.
AccuracyResult evaluate_hd(const EmgDataset& dataset, std::size_t dim,
                           const ProtocolConfig& config = {});

/// Trains and evaluates the trained HD classifier of a single subject;
/// exposed so benches can reuse the model for cycle measurements.
hd::HdClassifier train_hd_subject(const EmgDataset& dataset, std::size_t subject,
                                  std::size_t dim, const ProtocolConfig& config = {});

/// As above, but on an already-computed split — lets callers that also need
/// the test half (evaluate_hd) compute dataset.split once per subject.
hd::HdClassifier train_hd_subject(const EmgDataset& dataset, const EmgDataset::Split& split,
                                  std::size_t dim, const ProtocolConfig& config = {});

struct SvmAccuracyResult {
  std::vector<SubjectResult> subjects;
  double mean_accuracy = 0.0;
  std::size_t min_total_svs = 0;   ///< smallest per-subject model (paper: 55/machine)
  std::size_t max_total_svs = 0;
  double mean_svs_per_machine = 0.0;
};

/// Trains one one-vs-one SVM per subject and evaluates trial-level voting.
SvmAccuracyResult evaluate_svm(const EmgDataset& dataset, const svm::KernelConfig& kernel,
                               const svm::SmoConfig& smo,
                               const svm::WindowConfig& windows = {},
                               const ProtocolConfig& config = {});

/// Trains the SVM of one subject (for cycle/model-size measurements).
svm::MulticlassSvm train_svm_subject(const EmgDataset& dataset, std::size_t subject,
                                     const svm::KernelConfig& kernel,
                                     const svm::SmoConfig& smo,
                                     const svm::WindowConfig& windows = {},
                                     const ProtocolConfig& config = {});

}  // namespace pulphd::emg
