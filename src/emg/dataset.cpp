#include "emg/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "emg/filters.hpp"

namespace pulphd::emg {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr float kAdcFullScaleMv = 40.0f;  // +-40 mV front-end range

/// Distinct per-gesture activation levels of the four canonical forearm
/// channels (flexor/extensor groups). Extra channels interpolate these with
/// class-seeded pseudo-random weights.
constexpr double kCanonicalPatterns[kGestureCount][4] = {
    {0.05, 0.05, 0.05, 0.05},  // rest
    {0.95, 0.70, 0.45, 0.60},  // closed hand: strong global flexion
    {0.35, 0.95, 0.75, 0.30},  // open hand: extensor dominated
    {0.60, 0.30, 0.90, 0.50},  // 2-finger pinch
    {0.30, 0.50, 0.40, 0.95},  // point index
};

// Relative phase of the slow synergy modulation per channel: finger
// gestures recruit the flexor compartments with different inter-muscle
// coordination even when their mean activation is similar. The pinch/point
// pair is mean-similar but phase-distinct: a window-mean feature cannot
// separate what the per-sample spatial patterns can.
constexpr double kSynergyPhase[kGestureCount][4] = {
    {0.0, 0.0, 0.0, 0.0},          // rest (no modulation anyway)
    {0.0, 0.0, 0.0, 0.0},          // closed hand: synchronized
    {0.0, kPi / 2, kPi, 3 * kPi / 2},  // open hand: rotating recruitment
    {0.0, kPi, 0.0, kPi},          // pinch: alternating pairs
    {0.0, 0.0, kPi, kPi},          // point: split halves
};

double synergy_phase(std::size_t label, std::size_t channel) {
  return kSynergyPhase[label][channel % 4] +
         static_cast<double>(channel / 4) * (kPi / 3.0);
}

double base_activation(std::size_t label, std::size_t channel, std::size_t channels,
                       pulphd::Xoshiro256StarStar& class_rng) {
  if (channel < 4) return kCanonicalPatterns[label][channel];
  // Higher-density electrode arrays (Fig. 5's 8..256 channels): each extra
  // electrode mixes two canonical sites plus a class-specific random
  // component, keeping patterns distinct across classes.
  (void)channels;
  const double a = kCanonicalPatterns[label][channel % 4];
  const double b = kCanonicalPatterns[label][(channel + 1) % 4];
  const double mix = class_rng.next_double();
  double v = 0.5 * (a + b) + 0.35 * (mix - 0.5);
  if (label == static_cast<std::size_t>(Gesture::kRest)) v = 0.05;
  return std::clamp(v, 0.02, 1.0);
}

/// Trapezoid activation profile of one gesture trial: rest, ramp-up, hold,
/// ramp-down, rest.
double activation_profile(double t_seconds, double onset, double ramp, double release,
                          double trial_seconds) {
  if (t_seconds < onset) return 0.0;
  if (t_seconds < onset + ramp) return (t_seconds - onset) / ramp;
  const double fall_start = trial_seconds - release;
  if (t_seconds < fall_start) return 1.0;
  const double fall = (trial_seconds - t_seconds) / release;
  return std::max(0.0, fall);
}

}  // namespace

std::string gesture_name(std::size_t label) {
  switch (static_cast<Gesture>(label)) {
    case Gesture::kRest: return "rest";
    case Gesture::kClosedHand: return "closed hand";
    case Gesture::kOpenHand: return "open hand";
    case Gesture::kTwoFingerPinch: return "2-finger pinch";
    case Gesture::kPointIndex: return "point index";
  }
  return "gesture" + std::to_string(label);
}

void GeneratorConfig::validate() const {
  require(subjects >= 1, "GeneratorConfig: subjects must be >= 1");
  require(repetitions >= 2, "GeneratorConfig: repetitions must be >= 2");
  require(channels >= 1, "GeneratorConfig: channels must be >= 1");
  require(sample_rate_hz > 0, "GeneratorConfig: sample rate must be positive");
  require(trial_seconds > 0.5, "GeneratorConfig: trials must exceed 0.5 s");
  require(max_amplitude_mv > 0, "GeneratorConfig: max amplitude must be positive");
  require(pattern_overlap >= 0.0 && pattern_overlap < 1.0,
          "GeneratorConfig: pattern_overlap must be in [0, 1)");
}

std::vector<const EmgTrial*> EmgDataset::subject_trials(std::size_t subject) const {
  std::vector<const EmgTrial*> out;
  for (const EmgTrial& t : trials) {
    if (t.subject == subject) out.push_back(&t);
  }
  return out;
}

EmgDataset::Split EmgDataset::split(std::size_t subject, double train_fraction) const {
  require(train_fraction > 0.0 && train_fraction <= 1.0,
          "EmgDataset::split: train_fraction must be in (0, 1]");
  Split s;
  const std::size_t train_reps = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(train_fraction *
                                              static_cast<double>(config.repetitions))));
  for (const EmgTrial& t : trials) {
    if (t.subject != subject) continue;
    s.test.push_back(&t);  // "the entire dataset is used for testing" (§4.1)
    if (t.repetition < train_reps) s.train.push_back(&t);
  }
  return s;
}

float adc_16bit_roundtrip(float value_mv, float full_scale_mv) noexcept {
  const float clamped = std::clamp(value_mv, -full_scale_mv, full_scale_mv);
  const float lsb = (2.0f * full_scale_mv) / 65535.0f;
  // Codes saturate at +-32767 so the reconstruction never exceeds the rails.
  const float code = std::clamp(std::round(clamped / lsb), -32767.0f, 32767.0f);
  return code * lsb;
}

EmgDataset generate_dataset(const GeneratorConfig& config) {
  config.validate();
  EmgDataset ds;
  ds.config = config;

  const std::size_t samples = config.samples_per_trial();
  const double dt = 1.0 / config.sample_rate_hz;

  // Class patterns (shared across subjects, per the physiology).
  std::vector<std::vector<double>> patterns(kGestureCount,
                                            std::vector<double>(config.channels));
  for (std::size_t g = 0; g < kGestureCount; ++g) {
    pulphd::Xoshiro256StarStar class_rng(
        pulphd::derive_seed(config.seed, "class-pattern-" + std::to_string(g)));
    for (std::size_t c = 0; c < config.channels; ++c) {
      patterns[g][c] = base_activation(g, c, config.channels, class_rng);
    }
  }
  // The shared co-contraction component that blurs class separation.
  std::vector<double> common(config.channels);
  {
    pulphd::Xoshiro256StarStar common_rng(pulphd::derive_seed(config.seed, "common-pattern"));
    for (auto& v : common) v = 0.4 + 0.3 * common_rng.next_double();
  }

  Biquad notch = Biquad::notch(config.sample_rate_hz, 50.0, 30.0);
  EnvelopeExtractor envelope(config.sample_rate_hz, 4.0);

  for (std::size_t subject = 0; subject < config.subjects; ++subject) {
    pulphd::Xoshiro256StarStar subj_rng(
        pulphd::derive_seed(config.seed, "subject-" + std::to_string(subject)));
    std::vector<double> gain(config.channels);
    for (auto& g : gain) {
      g = 1.0 + config.subject_gain_spread * (2.0 * subj_rng.next_double() - 1.0);
    }
    const double subject_noise_scale = 0.85 + 0.3 * subj_rng.next_double();
    // Per-channel drift direction of this subject's session (electrode
    // contact slowly improving or degrading).
    std::vector<double> drift_dir(config.channels);
    for (auto& d : drift_dir) {
      d = (subj_rng.next_bernoulli(0.5) ? 1.0 : -1.0) * subj_rng.next_uniform(0.5, 1.0);
    }

    for (std::size_t label = 0; label < kGestureCount; ++label) {
      for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        EmgTrial trial;
        trial.subject = subject;
        trial.label = label;
        trial.repetition = rep;
        trial.raw.assign(config.channels, std::vector<float>(samples));

        const bool is_rest = label == static_cast<std::size_t>(Gesture::kRest);
        double strength = std::max(
            0.35, 1.0 + config.trial_jitter * subj_rng.next_gaussian());
        const double onset = is_rest ? 0.0 : 0.1 + 0.3 * subj_rng.next_double();
        const double ramp = 0.15 + 0.15 * subj_rng.next_double();
        const double release = 0.2 + 0.3 * subj_rng.next_double();
        const double hum_phase = 2.0 * kPi * subj_rng.next_double();

        // A fraction of gesture executions are poor: partway through the
        // hold, the grip slips and the spatial pattern drifts toward some
        // other gesture for the remainder of the trial. Decision rules that
        // hard-threshold each short window follow the slipped majority of
        // windows; bundling the whole gesture into one query integrates the
        // partial evidence for the true gesture across all samples — the
        // robustness property of HD bundling §4.1 leans on. The slip
        // parameters are drawn fresh per trial, so poor executions do not
        // form a repeatable cluster a classifier could memorize from the
        // training split.
        const bool hard_trial =
            !is_rest && subj_rng.next_bernoulli(config.hard_trial_fraction);
        trial.hard = hard_trial;
        std::size_t confuser = label;
        double slip_start_s = config.trial_seconds;  // never reached
        double slip_blend = 0.0;
        constexpr double kSlipTransitionS = 0.15;
        if (hard_trial) {
          strength *= subj_rng.next_uniform(0.85, 1.0);
          confuser = 1 + subj_rng.next_below(kGestureCount - 1);
          if (confuser == label) confuser = 1 + (label % (kGestureCount - 1));
          slip_start_s = config.trial_seconds * subj_rng.next_uniform(0.30, 0.50);
          slip_blend = subj_rng.next_uniform(0.50, 0.62);
        }
        std::vector<double> trial_channel_gain(config.channels);
        const double session_pos =
            config.repetitions > 1
                ? static_cast<double>(rep) / static_cast<double>(config.repetitions - 1)
                : 0.0;
        for (std::size_t c = 0; c < config.channels; ++c) {
          const double jitter = 1.0 + config.channel_jitter * subj_rng.next_gaussian();
          const double drifted =
              1.0 + config.session_drift * session_pos * drift_dir[c];
          trial_channel_gain[c] = std::max(0.2, jitter * drifted);
        }
        // One synergy-modulation clock per trial; channels derive their
        // phase from the gesture's coordination profile.
        const double trial_tremor_hz = 1.2 + 1.3 * subj_rng.next_double();
        const double trial_tremor_phase = 2.0 * kPi * subj_rng.next_double();

        for (std::size_t c = 0; c < config.channels; ++c) {
          // Motion-artifact schedule for this channel: Poisson-ish bursts.
          std::vector<std::pair<std::size_t, std::size_t>> bursts;  // [start, end)
          std::vector<double> burst_amp;
          {
            const double expected =
                config.artifact_rate_hz * config.trial_seconds;
            double cursor = subj_rng.next_double() * config.trial_seconds / std::max(1.0, expected);
            while (cursor < config.trial_seconds && expected > 0.0) {
              const double duration = 0.01 + 0.015 * subj_rng.next_double();
              const auto start = static_cast<std::size_t>(cursor * config.sample_rate_hz);
              const auto stop = std::min<std::size_t>(
                  samples, static_cast<std::size_t>((cursor + duration) * config.sample_rate_hz));
              if (start < stop) {
                bursts.emplace_back(start, stop);
                burst_amp.push_back(config.artifact_amp_mv *
                                    subj_rng.next_uniform(0.5, 1.5));
              }
              // Exponential inter-arrival with mean 1/rate.
              cursor += duration - std::log(std::max(1e-12, subj_rng.next_double())) /
                                       std::max(1e-9, config.artifact_rate_hz);
            }
          }
          std::size_t burst_idx = 0;
          const auto blended_at = [&](double base) {
            return ((1.0 - config.pattern_overlap) * base +
                    config.pattern_overlap * common[c] * (is_rest ? 0.12 : 1.0)) *
                   trial_channel_gain[c];
          };
          const double blended_true = blended_at(patterns[label][c]);
          const double blended_conf = blended_at(patterns[confuser][c]);
          const double tremor_hz = trial_tremor_hz;
          const double tremor_phase = trial_tremor_phase + synergy_phase(label, c);
          for (std::size_t i = 0; i < samples; ++i) {
            const double t = static_cast<double>(i) * dt;
            const double profile =
                is_rest ? 1.0
                        : activation_profile(t, onset, ramp, release, config.trial_seconds);
            // Slow tremor/fatigue drift of the contraction strength.
            const double drift =
                1.0 + config.tremor_depth *
                          std::sin(2.0 * kPi * tremor_hz * t + tremor_phase);
            // Grip-slip interpolation between the true and confuser pattern.
            double slip = 0.0;
            if (hard_trial && t > slip_start_s) {
              slip = slip_blend *
                     std::min(1.0, (t - slip_start_s) / kSlipTransitionS);
            }
            const double blended = (1.0 - slip) * blended_true + slip * blended_conf;
            // Modulated muscle-noise carrier: the envelope is the signal.
            const double amplitude_mv = blended * gain[c] * strength * profile * drift *
                                        config.max_amplitude_mv * 0.75;
            const double carrier = subj_rng.next_gaussian() * amplitude_mv;
            const double hum =
                config.hum_amplitude_mv * std::sin(2.0 * kPi * 50.0 * t + hum_phase);
            const double sensor = subject_noise_scale * config.channel_noise_mv *
                                  subj_rng.next_gaussian();
            while (burst_idx < bursts.size() && i >= bursts[burst_idx].second) ++burst_idx;
            const bool in_burst = burst_idx < bursts.size() &&
                                  i >= bursts[burst_idx].first &&
                                  i < bursts[burst_idx].second;
            const double artifact =
                in_burst ? burst_amp[burst_idx] * subj_rng.next_gaussian() : 0.0;
            trial.raw[c][i] = adc_16bit_roundtrip(
                static_cast<float>(carrier + hum + sensor + artifact), kAdcFullScaleMv);
          }
        }

        // Preprocessing (off-platform, Fig. 1): notch out the hum, extract
        // the amplitude envelope, clamp to the CIM range.
        std::vector<std::vector<float>> envelopes(config.channels);
        for (std::size_t c = 0; c < config.channels; ++c) {
          notch.reset();
          const std::vector<float> clean = notch.process_signal(trial.raw[c]);
          envelopes[c] = envelope.extract(clean);
          for (float& v : envelopes[c]) {
            v = std::clamp(v, 0.0f, static_cast<float>(config.max_amplitude_mv));
          }
        }
        trial.envelope.resize(samples);
        for (std::size_t i = 0; i < samples; ++i) {
          hd::Sample s(config.channels);
          for (std::size_t c = 0; c < config.channels; ++c) s[c] = envelopes[c][i];
          trial.envelope[i] = std::move(s);
        }
        ds.trials.push_back(std::move(trial));
      }
    }
  }
  return ds;
}

}  // namespace pulphd::emg
