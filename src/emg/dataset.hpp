// Synthetic EMG hand-gesture dataset.
//
// The paper evaluates on a recorded 5-subject dataset [19] (4 forearm
// channels @ 500 Hz, four gestures + rest, 10 repetitions of 3 s each)
// that is not redistributable. This generator synthesizes a statistically
// equivalent workload:
//
//  * every gesture activates the four (or more) channels with a distinct
//    spatial pattern — the physical fact the spatial encoder exploits;
//  * the raw signal is amplitude-modulated band-limited muscle noise plus
//    50 Hz power-line interference and sensor noise;
//  * subjects differ in per-channel electrode gain, pattern rotation and
//    noise level (training is per subject, as in §4.1);
//  * trials differ in activation strength, onset timing and noise draw —
//    the variability that produces the sub-100% accuracies of Table 1;
//  * a 16-bit ADC quantizes the raw signal (§3 acquires through a 16-bit
//    ADC [2]).
//
// The DESIGN.md substitution table documents why this preserves the
// behaviour the paper measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hd/classifier.hpp"  // for hd::Trial / hd::Sample

namespace pulphd::emg {

/// Class labels. Rest is its own prototype, as in the paper's 5-class AM.
enum class Gesture : std::size_t {
  kRest = 0,
  kClosedHand = 1,
  kOpenHand = 2,
  kTwoFingerPinch = 3,
  kPointIndex = 4,
};

inline constexpr std::size_t kGestureCount = 5;

std::string gesture_name(std::size_t label);

struct GeneratorConfig {
  std::size_t subjects = 5;
  std::size_t repetitions = 10;     ///< trials per gesture per subject
  std::size_t channels = 4;
  double sample_rate_hz = 500.0;
  double trial_seconds = 3.0;
  double max_amplitude_mv = 21.0;   ///< envelope ceiling (CIM range, §3)

  // Difficulty knobs (calibrated so HD/SVM accuracies land near Table 1).
  double pattern_overlap = 0.12;   ///< blend of a shared co-contraction pattern
  double trial_jitter = 0.05;      ///< per-trial variation of activation strength
  double channel_noise_mv = 1.0;   ///< sensor noise floor (std, mV)
  double hum_amplitude_mv = 1.5;   ///< 50 Hz interference amplitude
  double subject_gain_spread = 0.25;  ///< +- spread of per-subject channel gains
  /// Slow within-trial amplitude fluctuation (tremor / fatigue drift),
  /// 1.2-2.5 Hz with gesture-specific inter-channel phase relations.
  double tremor_depth = 0.20;
  /// Per-trial, per-channel activation perturbation (electrode shift /
  /// posture change between repetitions), std of a multiplicative factor.
  double channel_jitter = 0.04;
  /// Fraction of trials executed poorly (weak contraction whose pattern
  /// drifts toward another gesture) — the genuinely ambiguous repetitions
  /// that bound accuracy below 100% at every dimensionality.
  double hard_trial_fraction = 0.14;
  /// Within-session drift: electrode contact and muscle state change over
  /// the session, so later repetitions' channel gains drift away from the
  /// early (training) repetitions by up to this fraction. The paper trains
  /// on the first 25% of each gesture's repetitions and tests on all of
  /// them (§4.1), so the drift is precisely the train/test gap.
  double session_drift = 0.55;
  /// Motion-artifact bursts (electrode cable tugs): expected events per
  /// second per channel, each 20-60 ms of large additive amplitude. Window
  /// means are dragged by these outliers; the majority-bundled HD query is
  /// barely affected — the robustness property §4.1 highlights.
  double artifact_rate_hz = 0.8;
  double artifact_amp_mv = 12.0;

  std::uint64_t seed = 0x5eed0e36ULL;

  std::size_t samples_per_trial() const noexcept {
    return static_cast<std::size_t>(sample_rate_hz * trial_seconds);
  }
  void validate() const;
};

/// One labeled trial, kept in both raw and preprocessed form.
struct EmgTrial {
  std::size_t subject = 0;
  std::size_t label = 0;          ///< Gesture as index
  std::size_t repetition = 0;
  bool hard = false;              ///< poorly executed repetition (diagnostics)
  /// Raw ADC output per channel (channel-major), in millivolt.
  std::vector<std::vector<float>> raw;
  /// Preprocessed amplitude envelopes as sample-major hd::Trial
  /// (what the HD chain and the SVM consume).
  hd::Trial envelope;
};

struct EmgDataset {
  GeneratorConfig config;
  std::vector<EmgTrial> trials;

  /// Trials of one subject (the paper trains/tests per subject).
  std::vector<const EmgTrial*> subject_trials(std::size_t subject) const;

  /// The paper's split: the first `train_fraction` of each gesture's
  /// repetitions train; the full set tests. Returned vectors point into
  /// this dataset.
  struct Split {
    std::vector<const EmgTrial*> train;
    std::vector<const EmgTrial*> test;
  };
  Split split(std::size_t subject, double train_fraction = 0.25) const;
};

/// Generates the full dataset (raw + preprocessed envelopes).
EmgDataset generate_dataset(const GeneratorConfig& config);

/// Quantizes a physical value to a 16-bit ADC code and back (round-trip),
/// modeling the acquisition front-end of [2]. Exposed for tests.
float adc_16bit_roundtrip(float value_mv, float full_scale_mv) noexcept;

}  // namespace pulphd::emg
