// Ablation: binary vs integer (non-binarized) associative memory.
//
// The paper's AM thresholds each class accumulator to one bit per
// component (§2.1.1). Keeping the integer counters and classifying by
// normalized dot product is the standard "non-binarized" HD extension:
// this bench quantifies what the binarization costs in accuracy and what
// the integer read-out costs in memory — at several dimensions, since the
// two effects trade against each other.
#include <cstdio>

#include "common/table.hpp"
#include "emg/protocol.hpp"
#include "hd/integer_am.hpp"

namespace {

using namespace pulphd;

struct Pair {
  double binary_accuracy = 0.0;
  double integer_accuracy = 0.0;
};

Pair evaluate_at(const emg::EmgDataset& dataset, std::size_t dim) {
  const emg::ProtocolConfig protocol;
  Pair out;
  for (std::size_t s = 0; s < dataset.config.subjects; ++s) {
    hd::HdClassifier clf = emg::train_hd_subject(dataset, s, dim, protocol);
    // Re-train an integer AM from the same encoded trials.
    hd::IntegerAssociativeMemory iam(emg::kGestureCount, dim);
    const auto split = dataset.split(s, protocol.train_fraction);
    for (const emg::EmgTrial* trial : split.train) {
      for (const auto& gram :
           clf.encode_trial(emg::active_segment(trial->envelope, protocol))) {
        iam.train(trial->label, gram);
      }
    }
    std::size_t bin_ok = 0;
    std::size_t int_ok = 0;
    for (const emg::EmgTrial* trial : split.test) {
      const hd::Hypervector query =
          clf.encode_query(emg::active_segment(trial->envelope, protocol));
      bin_ok += clf.predict_encoded(query).label == trial->label;
      int_ok += iam.classify(query).label == trial->label;
    }
    const auto n = static_cast<double>(split.test.size());
    out.binary_accuracy += static_cast<double>(bin_ok) / n;
    out.integer_accuracy += static_cast<double>(int_ok) / n;
  }
  const auto subjects = static_cast<double>(dataset.config.subjects);
  out.binary_accuracy /= subjects;
  out.integer_accuracy /= subjects;
  return out;
}

}  // namespace

int main() {
  std::puts("Ablation: binary (paper) vs integer (non-binarized) associative memory\n");

  const emg::EmgDataset dataset = emg::generate_dataset(emg::GeneratorConfig{});

  TextTable table("EMG accuracy and AM footprint per read-out");
  table.set_header({"D", "binary acc", "integer acc", "binary AM", "integer AM"});
  for (const std::size_t dim : {10000ul, 2000ul, 500ul, 200ul, 100ul}) {
    const Pair p = evaluate_at(dataset, dim);
    const double bin_kb = static_cast<double>(emg::kGestureCount) *
                          static_cast<double>(words_for_dim(dim)) * 4.0 / 1024.0;
    const double int_kb =
        static_cast<double>(emg::kGestureCount) * static_cast<double>(dim) * 2.0 / 1024.0;
    table.add_row({std::to_string(dim), fmt_percent(p.binary_accuracy),
                   fmt_percent(p.integer_accuracy), fmt_double(bin_kb, 1) + " kB",
                   fmt_double(int_kb, 1) + " kB"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape check: at large D the binary AM matches the integer read-out\n"
            "(binarization costs nothing — the paper's design point); at small D the\n"
            "integer counters claw back accuracy at 16x the AM memory.");
  return 0;
}
