// §4.1's dimensionality study: "The HD classifier closely maintains its
// accuracy when its dimensionality is reduced from 10,000 to 200, but
// beyond this point the accuracy is dropped significantly."
//
// Sweeps D from 10,000 down to 64 on the synthetic 5-subject EMG task and
// prints the mean accuracy next to the SVM baseline (89.6% in the paper).
#include <cstdio>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "emg/protocol.hpp"

int main() {
  using namespace pulphd;

  std::puts("Reproducing the Section 4.1 dimensionality sweep (HD vs SVM accuracy)\n");

  const emg::EmgDataset dataset = emg::generate_dataset(emg::GeneratorConfig{});
  const emg::SvmAccuracyResult svm =
      emg::evaluate_svm(dataset, svm::KernelConfig{}, svm::SmoConfig{});

  const std::vector<std::size_t> dims = {10000, 5000, 2000, 1000, 500, 200, 128, 64};

  TextTable table("HD accuracy vs dimension (paper anchors: 92.4% @ 10,000-D, 90.7% @ 200-D)");
  table.set_header({"D", "words", "HD accuracy", "vs SVM (" +
                                                     fmt_percent(svm.mean_accuracy) + ")"});
  CsvWriter csv("accuracy_vs_dimension.csv", {"dimension", "hd_accuracy", "svm_accuracy"});

  for (const std::size_t dim : dims) {
    const emg::AccuracyResult hd = emg::evaluate_hd(dataset, dim);
    table.add_row({std::to_string(dim), std::to_string(words_for_dim(dim)),
                   fmt_percent(hd.mean_accuracy),
                   hd.mean_accuracy >= svm.mean_accuracy ? "HD wins" : "SVM wins"});
    csv.add_row({std::to_string(dim), std::to_string(hd.mean_accuracy),
                 std::to_string(svm.mean_accuracy)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nSVM baseline: %s mean accuracy; per-subject SV totals %zu..%zu"
              " (model size varies, unlike HD)\n",
              fmt_percent(svm.mean_accuracy).c_str(), svm.min_total_svs,
              svm.max_total_svs);
  std::puts("Series written to accuracy_vs_dimension.csv");
  return 0;
}
