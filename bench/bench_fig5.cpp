// Fig. 5: performance and memory footprint with an increasing number of
// input channels (4..256) on the 8-core Wolf with built-ins, 10,000-D.
// Claims reproduced:
//   * cycles grow linearly with the channel count;
//   * the accelerator meets the 10 ms latency constraint across the sweep;
//   * the memory footprint (red line) also grows only linearly;
//   * the ARM Cortex-M4 "cannot meet the 10 ms latency constraint when the
//     number of channels is larger than 16".
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

int main() {
  using namespace pulphd;

  std::puts("Reproducing Fig. 5: cycles + memory footprint vs channels,"
            " Wolf 8 cores built-in, 10,000-D\n");

  const std::vector<std::size_t> channel_counts = {4, 8, 16, 32, 64, 128, 256};
  const sim::ClusterConfig wolf = sim::ClusterConfig::wolf(8, true);
  const sim::ClusterConfig m4 = sim::ClusterConfig::arm_cortex_m4();
  const double wolf_fmax = sim::PowerModel::wolf().max_freq_mhz();
  const double m4_fmax = sim::PowerModel::arm_cortex_m4().max_freq_mhz();

  TextTable table("Fig. 5 — channel sweep (latency at each platform's max frequency)");
  table.set_header({"channels", "Wolf cyc(k)", "Wolf lat(ms)", "Wolf<=10ms", "mem(kB)",
                    "M4 cyc(k)", "M4 lat(ms)", "M4<=10ms"});

  CsvWriter csv("fig5_channels_sweep.csv",
                {"channels", "wolf_cycles", "wolf_latency_ms", "footprint_bytes",
                 "m4_cycles", "m4_latency_ms"});

  for (const std::size_t channels : channel_counts) {
    const hd::HdClassifier model = bench::trained_model(10000, channels, 1);
    kernels::ChainConfig cc;
    const kernels::ProcessingChain wolf_chain(wolf, model, cc);
    const auto window = bench::bench_window(channels, 1);
    const std::uint64_t wolf_cycles = wolf_chain.classify(window).cycles.total();
    const kernels::ChainFootprint fp = wolf_chain.footprint();

    cc.model_dma = false;
    const kernels::ProcessingChain m4_chain(m4, model, cc);
    const std::uint64_t m4_cycles = m4_chain.classify(window).cycles.total();

    const double wolf_ms = static_cast<double>(wolf_cycles) / (wolf_fmax * 1e3);
    const double m4_ms = static_cast<double>(m4_cycles) / (m4_fmax * 1e3);

    table.add_row({std::to_string(channels), fmt_cycles_k(static_cast<double>(wolf_cycles)),
                   fmt_double(wolf_ms, 2), wolf_ms <= 10.0 ? "yes" : "NO",
                   fmt_double(static_cast<double>(fp.total()) / 1024.0, 1),
                   fmt_cycles_k(static_cast<double>(m4_cycles)), fmt_double(m4_ms, 2),
                   m4_ms <= 10.0 ? "yes" : "NO"});
    csv.add_row({std::to_string(channels), std::to_string(wolf_cycles),
                 std::to_string(wolf_ms), std::to_string(fp.total()),
                 std::to_string(m4_cycles), std::to_string(m4_ms)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape checks: Wolf cycles and footprint grow linearly in the channel\n"
            "count and stay within the 10 ms budget; the Cortex-M4 falls out of the\n"
            "budget beyond 16 channels, as reported in §5.2.");
  std::puts("Series written to fig5_channels_sweep.csv");
  return 0;
}
