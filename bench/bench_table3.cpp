// Table 3: per-kernel cycle breakdown of the accelerated HD chain on
// PULPv3 (1 and 4 cores) and Wolf (1 core, 1 core + built-ins, 8 cores +
// built-ins); 10,000-D, N = 1. Speed-ups are relative to single-core
// PULPv3, "ld" is each kernel's share of the total, as in the paper.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pulphd;

  std::puts("Reproducing Table 3: kernel breakdown, 10,000-D, N = 1, built-ins where noted\n");

  const hd::HdClassifier model = bench::trained_model(10000);

  struct Config {
    const char* name;
    sim::ClusterConfig cluster;
    double paper_map_k, paper_am_k, paper_total_k;
  };
  const std::vector<Config> configs = {
      {"PULPv3 1 core", sim::ClusterConfig::pulpv3(1), 492, 41, 533},
      {"PULPv3 4 cores", sim::ClusterConfig::pulpv3(4), 129, 14, 143},
      {"Wolf 1 core", sim::ClusterConfig::wolf(1, false), 401, 33, 434},
      {"Wolf 1 core built-in", sim::ClusterConfig::wolf(1, true), 176, 12, 188},
      {"Wolf 8 cores built-in", sim::ClusterConfig::wolf(8, true), 25, 4, 29},
  };

  const kernels::ChainBreakdown base = bench::run_chain(configs[0].cluster, model);
  const auto base_map = static_cast<double>(base.map_encode_total());
  const auto base_am = static_cast<double>(base.am_total());
  const auto base_total = static_cast<double>(base.total());

  TextTable table("Table 3 — cycles (cyc), load share (ld) and speed-up (sp) vs PULPv3 1 core");
  table.set_header({"Platform", "Kernel", "cyc(k)", "ld(%)", "sp(x)", "paper cyc(k)",
                    "paper sp(x)", "delta"});
  for (const Config& cfg : configs) {
    const kernels::ChainBreakdown bd = bench::run_chain(cfg.cluster, model);
    const auto map = static_cast<double>(bd.map_encode_total());
    const auto am = static_cast<double>(bd.am_total());
    const auto total = static_cast<double>(bd.total());
    table.add_row({cfg.name, "MAP+ENCODERS", fmt_cycles_k(map),
                   fmt_double(map / total * 100.0, 2), fmt_speedup(base_map / map),
                   fmt_double(cfg.paper_map_k, 0),
                   fmt_speedup(492.0 / cfg.paper_map_k),
                   bench::delta_pct(map, cfg.paper_map_k * 1000)});
    table.add_row({"", "AM", fmt_cycles_k(am), fmt_double(am / total * 100.0, 2),
                   fmt_speedup(base_am / am), fmt_double(cfg.paper_am_k, 0),
                   fmt_speedup(41.0 / cfg.paper_am_k),
                   bench::delta_pct(am, cfg.paper_am_k * 1000)});
    table.add_row({"", "TOTAL", fmt_cycles_k(total), "100.00",
                   fmt_speedup(base_total / total), fmt_double(cfg.paper_total_k, 0),
                   fmt_speedup(533.0 / cfg.paper_total_k),
                   bench::delta_pct(total, cfg.paper_total_k * 1000)});
  }
  std::fputs(table.render().c_str(), stdout);

  const kernels::ChainBreakdown w8 = bench::run_chain(configs[4].cluster, model);
  std::printf("\nEnd-to-end 8-core Wolf built-in speed-up vs single-core PULPv3: %.2fx"
              " (paper: 18.38x)\n",
              base_total / static_cast<double>(w8.total()));
  std::puts("Shape checks: MAP+ENCODERS scales near-ideally; the AM kernel saturates\n"
            "as its small workload meets the constant runtime overhead (§5.1).");
  return 0;
}
