// Beyond-the-paper optimization study: bit-sliced (vertical counter)
// majority vs the paper's two implementations (portable shift/mask and the
// Fig. 2 built-in sequence).
//
// The bit-sliced kernel processes 32 components per logic operation, so it
// outruns even the XpulpV2 built-ins — evidence for the paper's closing
// claim that "future HD-centric accelerators" have headroom left.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "kernels/bitsliced.hpp"
#include "kernels/primitives.hpp"

int main() {
  using namespace pulphd;

  std::puts("Optimization study: bit-sliced majority vs the paper's kernels (313 words)\n");

  Xoshiro256StarStar rng(1);
  TextTable table("Majority kernel cycles on Wolf (1 core)");
  table.set_header({"operands", "generic(k)", "built-in(k)", "bit-sliced(k)",
                    "sliced vs generic", "sliced vs built-in"});

  for (const std::size_t n : {5ul, 9ul, 17ul, 33ul, 65ul, 129ul, 257ul}) {
    std::vector<std::vector<Word>> rows(n, std::vector<Word>(313));
    for (auto& row : rows) {
      for (auto& w : row) w = static_cast<Word>(rng.next());
    }
    std::vector<std::span<const Word>> spans(rows.begin(), rows.end());
    std::vector<Word> out(313);

    sim::CoreContext generic(sim::isa_costs(sim::CoreKind::kWolfRv32), 1.0);
    sim::CoreContext builtin(sim::isa_costs(sim::CoreKind::kWolfRv32Builtin), 1.0);
    sim::CoreContext sliced(sim::isa_costs(sim::CoreKind::kWolfRv32), 1.0);
    kernels::majority_range_generic(generic, spans, out, 0, 313);
    kernels::majority_range_builtin(builtin, spans, out, 0, 313);
    kernels::majority_range_bitsliced(sliced, spans, out, 0, 313);

    table.add_row({std::to_string(n), fmt_cycles_k(static_cast<double>(generic.cycles())),
                   fmt_cycles_k(static_cast<double>(builtin.cycles())),
                   fmt_cycles_k(static_cast<double>(sliced.cycles())),
                   fmt_speedup(static_cast<double>(generic.cycles()) /
                               static_cast<double>(sliced.cycles())),
                   fmt_speedup(static_cast<double>(builtin.cycles()) /
                               static_cast<double>(sliced.cycles()))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape check: word-parallel counting beats per-bit extraction by an\n"
            "order of magnitude at small operand counts and stays ahead throughout —\n"
            "with no special instructions required (it would also lift the M4).\n"
            "Bit-exactness with the paper's kernels is enforced by bitsliced_test.");
  return 0;
}
