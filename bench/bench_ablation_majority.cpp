// Ablation: the Fig. 2 built-in majority sequence (p.extractu / p.insert /
// p.cnt) versus the portable shift-and-mask code, isolated from the rest of
// the chain. This is the single largest contributor to the Wolf built-in
// speed-up of Table 3.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "kernels/primitives.hpp"

int main() {
  using namespace pulphd;
  using kernels::majority_range_builtin;
  using kernels::majority_range_generic;

  std::puts("Ablation: majority kernel, generic vs built-in instruction sequences\n");

  constexpr std::size_t kWords = 313;  // 10,000-D
  Xoshiro256StarStar rng(1);

  TextTable table("Majority of (channels + tie-break) rows over 313 words");
  table.set_header({"channels", "operands", "generic PULPv3(k)", "generic Wolf(k)",
                    "built-in Wolf(k)", "built-in gain"});

  for (const std::size_t channels : {4ul, 8ul, 16ul, 32ul, 64ul, 128ul, 256ul}) {
    const std::size_t operands = channels + (channels % 2 == 0 ? 1 : 0);
    std::vector<std::vector<Word>> rows(operands, std::vector<Word>(kWords));
    for (auto& row : rows) {
      for (auto& w : row) w = static_cast<Word>(rng.next());
    }
    std::vector<std::span<const Word>> spans(rows.begin(), rows.end());
    std::vector<Word> out(kWords);

    sim::CoreContext pulp(sim::isa_costs(sim::CoreKind::kPulpV3Or1k), 1.0);
    sim::CoreContext wolf(sim::isa_costs(sim::CoreKind::kWolfRv32), 1.0);
    sim::CoreContext builtin(sim::isa_costs(sim::CoreKind::kWolfRv32Builtin), 1.0);
    majority_range_generic(pulp, spans, out, 0, kWords);
    majority_range_generic(wolf, spans, out, 0, kWords);
    majority_range_builtin(builtin, spans, out, 0, kWords);

    table.add_row({std::to_string(channels), std::to_string(operands),
                   fmt_cycles_k(static_cast<double>(pulp.cycles())),
                   fmt_cycles_k(static_cast<double>(wolf.cycles())),
                   fmt_cycles_k(static_cast<double>(builtin.cycles())),
                   fmt_speedup(static_cast<double>(wolf.cycles()) /
                               static_cast<double>(builtin.cycles()))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape check: the built-in sequence wins by >2x at every operand count\n"
            "(the paper reports 2.3x on the full MAP+ENCODERS kernel).");
  return 0;
}
