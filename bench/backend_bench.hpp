// Shared machine-readable kernel-backend benchmark suite.
//
// Drives every compiled+supported kernel backend through the library's hot
// kernels (Hamming distance matrix, bulk XOR, bulk majority, packed batch
// spatial encode, end-to-end encode_trials) with warmup iterations and
// median-of-N timing, and emits the rows as BENCH_hd_ops.json so the repo's
// perf trajectory is recorded in a diffable form:
//
//   {"kernel": "hamming_distance_matrix", "backend": "avx2", "threads": 1,
//    "dim": 10048, "batch": 1024, "ns_per_query": 812.4, "gb_per_s": 30.9,
//    "reps": 9, "warmup": 3}
//
// ns_per_query is the median over `reps` timed repetitions (each a
// calibrated block of inner iterations) divided by the items per call;
// gb_per_s is the kernel's streamed bytes per item at that rate. Used by
// both bench_hd_ops (alongside its google-benchmark micro benches) and the
// standalone bench_backends binary.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "hd/classifier.hpp"
#include "hd/encoder.hpp"
#include "hd/item_memory.hpp"
#include "kernels/backend.hpp"
#include "kernels/primitives.hpp"

namespace pulphd::benchjson {

struct BenchRow {
  std::string kernel;
  std::string backend;
  std::size_t threads = 1;
  std::size_t dim = 0;
  std::size_t batch = 1;
  /// encode_trials only: true = fused single-pass pipeline, false = legacy
  /// sample-at-a-time chain. Always false for the plain word kernels.
  bool fused = false;
  double ns_per_query = 0.0;
  double gb_per_s = 0.0;
  std::size_t reps = 0;
  std::size_t warmup = 0;
};

struct SuiteOptions {
  bool quick = false;  ///< CI smoke mode: fewer reps, shorter blocks, fewer configs
};

namespace detail {

inline double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2] : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

/// Times fn with `warmup` discarded repetitions followed by `reps` timed
/// ones and returns the median ns per item. Each repetition runs a block of
/// inner iterations calibrated once to ~target_ms so short kernels are not
/// measured at clock resolution.
template <typename F>
double median_ns_per_item(F&& fn, std::size_t items_per_call, std::size_t warmup,
                          std::size_t reps, double target_ms) {
  using Clock = std::chrono::steady_clock;
  const auto once_begin = Clock::now();
  fn();
  const auto once_end = Clock::now();
  const double once_ns = std::max(
      1.0, std::chrono::duration<double, std::nano>(once_end - once_begin).count());
  const auto inner = static_cast<std::size_t>(
      std::max(1.0, (target_ms * 1e6) / once_ns));
  for (std::size_t i = 0; i < warmup; ++i) {
    for (std::size_t k = 0; k < inner; ++k) fn();
  }
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto begin = Clock::now();
    for (std::size_t k = 0; k < inner; ++k) fn();
    const auto end = Clock::now();
    samples.push_back(std::chrono::duration<double, std::nano>(end - begin).count() /
                      static_cast<double>(inner * items_per_call));
  }
  return median(std::move(samples));
}

inline std::vector<Word> random_words(std::size_t count, Xoshiro256StarStar& rng) {
  std::vector<Word> words(count);
  for (auto& w : words) w = static_cast<Word>(rng.next() & 0xffffffffu);
  return words;
}

}  // namespace detail

inline std::vector<BenchRow> run_backend_suite(const SuiteOptions& opt) {
  const std::size_t warmup = opt.quick ? 1 : 3;
  const std::size_t reps = opt.quick ? 3 : 9;
  const double target_ms = opt.quick ? 2.0 : 10.0;
  const std::vector<std::size_t> dims =
      opt.quick ? std::vector<std::size_t>{10048} : std::vector<std::size_t>{10016, 10048};
  const std::vector<std::size_t> thread_counts =
      opt.quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  const std::size_t matrix_batch = opt.quick ? 256 : 1024;
  const std::size_t classes = 5;
  const std::size_t majority_rows = 9;
  const std::size_t encode_batch = opt.quick ? 64 : 256;
  const std::size_t trials_batch = opt.quick ? 16 : 64;
  const std::size_t samples_per_trial = 20;

  std::vector<const kernels::Backend*> backends;
  for (const kernels::Backend* b : kernels::compiled_backends()) {
    if (b->supported()) backends.push_back(b);
  }

  std::vector<BenchRow> rows;
  Xoshiro256StarStar rng(0xbe7c4);
  const double word_bytes = static_cast<double>(sizeof(Word));

  auto push_row = [&](const char* kernel, const kernels::Backend* backend,
                      std::size_t threads, std::size_t dim, std::size_t batch,
                      double ns_per_query, double bytes_per_query, bool fused = false) {
    BenchRow row;
    row.kernel = kernel;
    row.backend = backend->name;
    row.threads = threads;
    row.dim = dim;
    row.batch = batch;
    row.fused = fused;
    row.ns_per_query = ns_per_query;
    row.gb_per_s = bytes_per_query / ns_per_query;  // bytes/ns == GB/s
    row.reps = reps;
    row.warmup = warmup;
    rows.push_back(row);
  };

  for (const std::size_t dim : dims) {
    const std::size_t words = words_for_dim(dim);

    // Shared random operands per dim so every backend times identical data.
    const std::vector<Word> queries = detail::random_words(matrix_batch * words, rng);
    const std::vector<Word> prototypes = detail::random_words(classes * words, rng);
    const std::vector<Word> row_a = detail::random_words(words, rng);
    const std::vector<Word> row_b = detail::random_words(words, rng);
    std::vector<std::vector<Word>> majority_storage;
    std::vector<const Word*> majority_ptrs;
    for (std::size_t r = 0; r < majority_rows; ++r) {
      majority_storage.push_back(detail::random_words(words, rng));
      majority_ptrs.push_back(majority_storage.back().data());
    }

    for (const kernels::Backend* backend : backends) {
      const kernels::ScopedBackend forced(backend);

      // hamming_distance_matrix: the classify_batch hot kernel, sharded.
      for (const std::size_t threads : thread_counts) {
        std::vector<std::uint32_t> out(matrix_batch * classes);
        const double ns = detail::median_ns_per_item(
            [&] {
              kernels::hamming_distance_matrix(queries, prototypes, matrix_batch, classes,
                                               words, out, threads);
            },
            matrix_batch, warmup, reps, target_ms);
        push_row("hamming_distance_matrix", backend, threads, dim, matrix_batch, ns,
                 2.0 * static_cast<double>(classes * words) * word_bytes);
      }

      // hamming_words: one packed-row distance. The volatile store keeps
      // the call from being optimized out.
      {
        volatile std::uint64_t sink = 0;
        const double ns = detail::median_ns_per_item(
            [&] { sink = backend->hamming_words(row_a.data(), row_b.data(), words); }, 1,
            warmup, reps, target_ms);
        (void)sink;
        push_row("hamming_words", backend, 1, dim, 1, ns,
                 2.0 * static_cast<double>(words) * word_bytes);
      }

      // xor_words: bulk binding.
      {
        std::vector<Word> out(words);
        const double ns = detail::median_ns_per_item(
            [&] { backend->xor_words(row_a.data(), row_b.data(), out.data(), words); }, 1,
            warmup, reps, target_ms);
        push_row("xor_words", backend, 1, dim, 1, ns,
                 3.0 * static_cast<double>(words) * word_bytes);
      }

      // majority_words: bit-sliced bundling over 9 rows.
      {
        std::vector<Word> out(words);
        const double ns = detail::median_ns_per_item(
            [&] {
              backend->threshold_words(majority_ptrs.data(), majority_rows,
                                       majority_rows / 2, out.data(), words);
            },
            1, warmup, reps, target_ms);
        push_row("majority_words", backend, 1, dim, majority_rows, ns,
                 static_cast<double>(majority_rows + 1) * static_cast<double>(words) *
                     word_bytes);
      }

      // spatial_encode_batch: the packed multi-sample spatial encode.
      {
        const std::size_t channels = 4;
        const hd::ItemMemory im(channels, dim, 5);
        const hd::ContinuousItemMemory cim(22, dim, 0.0, 21.0, 6);
        const hd::SpatialEncoder enc(im, cim, channels);
        std::vector<std::vector<float>> samples(encode_batch,
                                                std::vector<float>(channels));
        for (auto& sample : samples) {
          for (auto& v : sample) {
            v = static_cast<float>(rng.next() % 2100u) / 100.0f;
          }
        }
        std::vector<hd::Hypervector> out(encode_batch, hd::Hypervector(dim));
        const double ns = detail::median_ns_per_item(
            [&] { enc.encode_batch(samples, out); }, encode_batch, warmup, reps,
            target_ms);
        // Bound rows: channels + tie-break; bind streams 3R, majority R+1.
        const double bench_rows = static_cast<double>(channels + 1);
        push_row("spatial_encode_batch", backend, 1, dim, encode_batch, ns,
                 (4.0 * bench_rows + 1.0) * static_cast<double>(words) * word_bytes);
      }
    }

    // encode_trials: end-to-end trial encoding (spatial + temporal +
    // bundling) across every supported backend, the fused/legacy pipelines,
    // and the thread knob — the rows the tentpole speedup and the thread
    // scaling (or its absence; see the "cores" field) are read from.
    {
      hd::ClassifierConfig cfg;
      cfg.dim = dim;
      hd::HdClassifier clf(cfg);
      std::vector<hd::Trial> trials(trials_batch);
      for (auto& trial : trials) {
        for (std::size_t s = 0; s < samples_per_trial; ++s) {
          hd::Sample sample(cfg.channels);
          for (auto& v : sample) {
            v = static_cast<float>(rng.next() % 2100u) / 100.0f;
          }
          trial.push_back(std::move(sample));
        }
      }
      const std::size_t words_per_sample = (cfg.channels + 1) * words;
      for (const kernels::Backend* backend : backends) {
        const kernels::ScopedBackend forced(backend);
        for (const bool fused : {true, false}) {
          clf.set_fused(fused);
          for (const std::size_t threads : thread_counts) {
            clf.set_threads(threads);
            const double ns = detail::median_ns_per_item(
                [&] { clf.encode_trials(trials); }, trials_batch, warmup, reps, target_ms);
            push_row("encode_trials", backend, threads, dim, trials_batch, ns,
                     static_cast<double>(samples_per_trial) * 5.0 *
                         static_cast<double>(words_per_sample) * word_bytes,
                     fused);
          }
        }
      }
    }
  }
  return rows;
}

inline void write_bench_json(const std::vector<BenchRow>& rows, const std::string& path,
                             const SuiteOptions& opt) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_bench_json: cannot open " + path);
  out << "{\n  \"schema\": \"pulphd-bench-v1\",\n  \"bench\": \"bench_hd_ops\",\n";
  out << "  \"cpu_features\": \"" << cpu_feature_summary() << "\",\n";
  // Thread-scaling rows are only meaningful relative to the runner: with
  // `cores` == 1 the shared pool has zero workers and every threads > 1 row
  // legitimately matches the threads == 1 row (the PR 4 diagnosis of the
  // flat 1/2/4 rows — the runner, not the sharding, was the limit).
  out << "  \"cores\": " << ThreadPool::hardware_threads() << ",\n";
  out << "  \"pool_workers\": " << ThreadPool::shared().workers() << ",\n";
  out << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n  \"rows\": [\n";
  char buf[64];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"backend\": \"" << r.backend
        << "\", \"threads\": " << r.threads << ", \"dim\": " << r.dim
        << ", \"batch\": " << r.batch << ", \"fused\": " << (r.fused ? "true" : "false");
    std::snprintf(buf, sizeof(buf), "%.2f", r.ns_per_query);
    out << ", \"ns_per_query\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", r.gb_per_s);
    out << ", \"gb_per_s\": " << buf;
    out << ", \"reps\": " << r.reps << ", \"warmup\": " << r.warmup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.flush()) throw std::runtime_error("write_bench_json: write failed: " + path);
}

/// Parses one command-line argument of the shared suite (`--quick`,
/// `--out=PATH`); returns true when the argument was consumed.
inline bool parse_suite_arg(const char* arg, SuiteOptions& opt, std::string& out_path) {
  if (std::strcmp(arg, "--quick") == 0) {
    opt.quick = true;
    return true;
  }
  if (std::strncmp(arg, "--out=", 6) == 0) {
    out_path = arg + 6;
    return true;
  }
  return false;
}

inline void print_rows(const std::vector<BenchRow>& rows) {
  std::printf("%-26s %-9s %7s %7s %7s %6s %14s %10s\n", "kernel", "backend", "threads",
              "dim", "batch", "fused", "ns/query", "GB/s");
  for (const BenchRow& r : rows) {
    std::printf("%-26s %-9s %7zu %7zu %7zu %6s %14.2f %10.3f\n", r.kernel.c_str(),
                r.backend.c_str(), r.threads, r.dim, r.batch, r.fused ? "yes" : "no",
                r.ns_per_query, r.gb_per_s);
  }
}

/// The shared body of both benchmark mains: banner, suite, table, JSON.
inline void run_suite_and_write(const SuiteOptions& opt, const std::string& out_path) {
  std::printf("cpu features: %s; active backend: %s; cores: %zu; pool workers: %zu\n",
              cpu_feature_summary().c_str(), kernels::active_backend().name,
              ThreadPool::hardware_threads(), ThreadPool::shared().workers());
  const std::vector<BenchRow> rows = run_backend_suite(opt);
  print_rows(rows);
  write_bench_json(rows, out_path, opt);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
}

}  // namespace pulphd::benchjson
