// Table 1: HD computing (200-D) versus SVM at iso-accuracy on the ARM
// Cortex-M4, 10 ms detection latency.
//
//   paper:  HD 12.35 k cycles @ 90.70%   |   SVM 25.10 k cycles @ 89.60%
//
// The HD row runs the full chain at 200-D on the M4 cost model; the SVM row
// trains the one-vs-one baseline per subject, quantizes it to Q15 and
// prices its inference with the same cost tables. Accuracies come from the
// synthetic 5-subject EMG dataset under the paper's protocol.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "svm/fixed_point_svm.hpp"

int main() {
  using namespace pulphd;

  std::puts("Reproducing Table 1: HD (200-D) vs SVM on ARM Cortex M4, 10 ms latency\n");

  const emg::EmgDataset dataset = emg::generate_dataset(emg::GeneratorConfig{});

  // --- HD row ---------------------------------------------------------
  const emg::AccuracyResult hd_acc = emg::evaluate_hd(dataset, 200);
  const hd::HdClassifier hd200 = emg::train_hd_subject(dataset, 0, 200);
  const kernels::ChainBreakdown hd_cycles =
      bench::run_chain(sim::ClusterConfig::arm_cortex_m4(), hd200, /*model_dma=*/false);

  // --- SVM row --------------------------------------------------------
  const svm::KernelConfig kernel;
  const svm::SmoConfig smo;
  const emg::SvmAccuracyResult svm_acc = emg::evaluate_svm(dataset, kernel, smo);
  // The paper picks the smallest per-subject model; price every subject's
  // quantized model and report the smallest, like §4.1 ("finally is chosen
  // ... as the smallest among the subjects").
  std::uint64_t svm_cycles = ~0ull;
  std::size_t svs_at_min = 0;
  for (std::size_t s = 0; s < dataset.config.subjects; ++s) {
    const svm::MulticlassSvm model = emg::train_svm_subject(dataset, s, kernel, smo);
    const auto quantized = svm::QuantizedMulticlassSvm::from_model(model);
    const std::uint64_t cycles = svm::m4_inference_cycles(quantized, 4);
    if (cycles < svm_cycles) {
      svm_cycles = cycles;
      svs_at_min = quantized.total_support_vectors();
    }
  }

  TextTable table("Table 1 — ARM Cortex M4, 10 ms detection latency");
  table.set_header({"Kernel", "Cycles(k)", "Accuracy(%)", "paper cyc(k)", "paper acc(%)",
                    "cyc delta"});
  table.add_row({"HD COMPUTING (200-D)", fmt_cycles_k(static_cast<double>(hd_cycles.total())),
                 fmt_double(hd_acc.mean_accuracy * 100.0, 2), "12.35", "90.70",
                 bench::delta_pct(static_cast<double>(hd_cycles.total()), 12350)});
  table.add_row({"SVM (fixed point)", fmt_cycles_k(static_cast<double>(svm_cycles)),
                 fmt_double(svm_acc.mean_accuracy * 100.0, 2), "25.10", "89.60",
                 bench::delta_pct(static_cast<double>(svm_cycles), 25100)});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nHD/SVM cycle ratio: %.2fx (paper: 2.03x)\n",
              static_cast<double>(svm_cycles) / static_cast<double>(hd_cycles.total()));
  std::printf("Smallest SVM model: %zu support vectors across 10 one-vs-one machines\n",
              svs_at_min);
  std::printf("HD model size is fixed by (D, N, channels): %zu words\n",
              words_for_dim(200) * (4 + 22 + 5));
  std::puts("\nShape check: HD is faster than SVM at iso-accuracy, as in the paper.");
  return 0;
}
