// Future-work projection (§1/§6): "the savings linearly benefit from a
// large number of cores paving the way for the development of future
// HD-centric accelerators".
//
// Scales the measured single-cluster chain across 1..8 Wolf clusters
// (8..64 cores) with the inter-cluster cost model of sim/multicluster.hpp,
// for both the small EMG workload and a large EEG-class one.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "sim/multicluster.hpp"

int main() {
  using namespace pulphd;

  std::puts("Future-work projection: multi-cluster scaling of the HD chain\n");

  struct Workload {
    const char* name;
    std::size_t channels;
    std::size_t ngram;
  };
  const std::vector<Workload> workloads = {
      {"EMG 4ch N=1", 4, 1},
      {"EEG 64ch N=10", 64, 10},
  };

  CsvWriter csv("multicluster_scaling.csv",
                {"workload", "clusters", "cores", "total_cycles", "speedup"});

  for (const Workload& w : workloads) {
    const hd::HdClassifier model = bench::trained_model(10000, w.channels, w.ngram);
    const kernels::ChainBreakdown bd =
        bench::run_chain(sim::ClusterConfig::wolf(8, true), model);

    TextTable table(std::string("Workload: ") + w.name +
                    "  (per-cluster baseline: 8-core Wolf built-in)");
    table.set_header({"clusters", "cores", "MAP+ENC(k)", "AM(k)", "TOTAL(k)", "speed-up",
                      "efficiency"});
    const double base_total = static_cast<double>(bd.total());
    for (const std::uint32_t clusters : {1u, 2u, 4u, 8u}) {
      sim::MultiClusterConfig mc;
      mc.cluster = sim::ClusterConfig::wolf(8, true);
      mc.clusters = clusters;
      const auto est = mc.scale(bd.map_encode_total(), bd.am_total(), bd.dma_transfer_total);
      const double speedup = base_total / static_cast<double>(est.total());
      table.add_row({std::to_string(clusters), std::to_string(mc.total_cores()),
                     fmt_cycles_k(static_cast<double>(est.map_encode)),
                     fmt_cycles_k(static_cast<double>(est.am)),
                     fmt_cycles_k(static_cast<double>(est.total())), fmt_speedup(speedup),
                     fmt_percent(speedup / clusters)});
      csv.add_row({w.name, std::to_string(clusters), std::to_string(mc.total_cores()),
                   std::to_string(est.total()), std::to_string(speedup)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
  }
  std::puts("Shape check: the large workload keeps scaling efficiently to 64 cores;\n"
            "the 10 ms EMG workload saturates once inter-cluster synchronization and\n"
            "shared-L2 streaming dominate — quantifying where an HD-centric many-core\n"
            "design pays off.");
  std::puts("Series written to multicluster_scaling.csv");
  return 0;
}
