// Shared setup for the benchmark harness: the paper's EMG configuration,
// a trained model per (dimension, channels, N), and cycle helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "emg/protocol.hpp"
#include "kernels/chain.hpp"
#include "sim/power.hpp"

namespace pulphd::bench {

/// Trains the paper's HD model from the synthetic EMG dataset (subject 0)
/// at an arbitrary (dim, channels, ngram). For channel counts beyond the
/// dataset's, a matching synthetic dataset is generated on the fly.
inline hd::HdClassifier trained_model(std::size_t dim, std::size_t channels = 4,
                                      std::size_t ngram = 1) {
  hd::ClassifierConfig cfg;
  cfg.dim = dim;
  cfg.channels = channels;
  cfg.ngram = ngram;
  hd::HdClassifier clf(cfg);
  // Train on synthetic level patterns: one trial per class with distinct
  // per-channel levels (the cycle model is data-independent, so bench
  // cycles do not depend on the training content).
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    hd::Trial trial;
    const std::size_t len = std::max<std::size_t>(3, ngram);
    for (std::size_t i = 0; i < len; ++i) {
      hd::Sample s(channels);
      for (std::size_t ch = 0; ch < channels; ++ch) {
        s[ch] = static_cast<float>((3 * c + 5 * ch + i) % 21);
      }
      trial.push_back(std::move(s));
    }
    clf.train(trial, c);
  }
  return clf;
}

/// A classification window of N samples for the chain.
inline std::vector<hd::Sample> bench_window(std::size_t channels, std::size_t ngram) {
  std::vector<hd::Sample> window;
  for (std::size_t i = 0; i < ngram; ++i) {
    hd::Sample s(channels);
    for (std::size_t ch = 0; ch < channels; ++ch) {
      s[ch] = static_cast<float>((7 * ch + 2 * i + 3) % 21);
    }
    window.push_back(std::move(s));
  }
  return window;
}

/// Runs one classification on a cluster and returns the cycle breakdown.
inline kernels::ChainBreakdown run_chain(const sim::ClusterConfig& cluster,
                                         const hd::HdClassifier& model,
                                         bool model_dma = true) {
  kernels::ChainConfig cc;
  cc.model_dma = model_dma;
  const kernels::ProcessingChain chain(cluster, model, cc);
  return chain
      .classify(bench_window(model.config().channels, model.config().ngram))
      .cycles;
}

/// Relative delta string for paper-vs-model columns: "+3.1%".
inline std::string delta_pct(double model, double paper) {
  const double d = (model - paper) / paper * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", d);
  return buf;
}

}  // namespace pulphd::bench
