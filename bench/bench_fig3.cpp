// Fig. 3: execution cycles versus hypervector dimension for several N-gram
// sizes, on the 8-core Wolf with built-ins. The paper's claim: "increasing
// the dimension of the hypervectors, for every N-gram size, corresponds to
// a linear growth of the execution time".
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

int main() {
  using namespace pulphd;

  std::puts("Reproducing Fig. 3: cycles vs dimension for N in {1,2,4,6,8,10},"
            " Wolf 8 cores built-in\n");

  const std::vector<std::size_t> dims = {1000, 2000, 4000, 6000, 8000, 10000};
  const std::vector<std::size_t> ngrams = {1, 2, 4, 6, 8, 10};
  const sim::ClusterConfig cluster = sim::ClusterConfig::wolf(8, true);

  TextTable table("Fig. 3 — kilocycles per classification");
  std::vector<std::string> header{"D \\ N"};
  for (const std::size_t n : ngrams) header.push_back("N=" + std::to_string(n));
  table.set_header(header);

  CsvWriter csv("fig3_cycles_vs_dimension.csv", [&] {
    std::vector<std::string> h{"dimension"};
    for (const std::size_t n : ngrams) h.push_back("cycles_n" + std::to_string(n));
    return h;
  }());

  // Linearity check data: cycles at min/max dimension per N.
  std::vector<double> first_row, last_row;
  for (const std::size_t dim : dims) {
    std::vector<std::string> row{std::to_string(dim)};
    std::vector<std::string> csv_row{std::to_string(dim)};
    for (const std::size_t n : ngrams) {
      const hd::HdClassifier model = bench::trained_model(dim, 4, n);
      const std::uint64_t cycles = bench::run_chain(cluster, model).total();
      row.push_back(fmt_cycles_k(static_cast<double>(cycles)));
      csv_row.push_back(std::to_string(cycles));
      if (dim == dims.front()) first_row.push_back(static_cast<double>(cycles));
      if (dim == dims.back()) last_row.push_back(static_cast<double>(cycles));
    }
    table.add_row(row);
    csv.add_row(csv_row);
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nLinearity (cycles at 10,000-D / cycles at 1,000-D; ideal slope ratio ~10):");
  for (std::size_t i = 0; i < ngrams.size(); ++i) {
    std::printf("  N=%-2zu  %.2fx\n", ngrams[i], last_row[i] / first_row[i]);
  }
  std::puts("\nSeries written to fig3_cycles_vs_dimension.csv");
  return 0;
}
