// Ablation: bit-packing (§3). "We directly map 32 consecutive binary
// components of a hypervector to an unsigned integer variable with 32
// bits ... This leads to a significant reduction of the memory accesses."
//
// Models the same chain with one byte per binary component (the naive
// layout): every XOR/majority/Hamming step touches 32x the words, the
// binding XOR degenerates to a byte-wise loop, and the popcount becomes a
// plain accumulation. Charged with the same ISA cost tables.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace pulphd;

/// Cycles of the unpacked (byte-per-component) chain on one core:
/// bind (XOR per component), majority (sum/compare per component) and AM
/// (compare-accumulate per component), with the same loop/addressing costs
/// the packed kernels pay.
std::uint64_t unpacked_chain_cycles(const sim::IsaCostTable& isa, std::size_t dim,
                                    std::size_t operands, std::size_t classes) {
  sim::CoreContext ctx(isa, 1.0);
  // Binding: per component, per channel: ld E, ld V, xor, st.
  ctx.loop_iters(dim * operands);
  ctx.load_l1(2 * dim * operands);
  ctx.addr_update(3 * dim * operands);
  ctx.alu(dim * operands);
  ctx.store_l1(dim * operands);
  // Majority: per component: inner loop over operands (ld + add), compare,
  // store — the extract/insert machinery disappears but every access is a
  // full memory operation now.
  ctx.loop_iters(dim * (operands + 1));
  ctx.load_l1(dim * operands);
  ctx.addr_update(dim * operands);
  ctx.alu(dim * (operands + 1));
  ctx.store_l1(dim);
  // AM: per class, per component: 2 loads, compare, accumulate.
  ctx.loop_iters(dim * classes);
  ctx.load_l1(2 * dim * classes);
  ctx.addr_update(2 * dim * classes);
  ctx.alu(2 * dim * classes);
  return ctx.cycles();
}

}  // namespace

int main() {
  std::puts("Ablation: 32-per-word bit packing vs byte-per-component layout\n");

  const hd::HdClassifier model = bench::trained_model(10000);
  constexpr std::size_t kOperands = 5;  // 4 channels + tie-break
  constexpr std::size_t kClasses = 5;

  TextTable table("Packed vs unpacked processing chain (single core, 10,000-D)");
  table.set_header({"Core", "packed cyc(k)", "unpacked cyc(k)", "packing gain",
                    "packed mem(kB)", "unpacked mem(kB)"});

  struct Case {
    sim::ClusterConfig cluster;
    sim::CoreKind kind;
  };
  const std::vector<Case> cases = {
      {sim::ClusterConfig::pulpv3(1), sim::CoreKind::kPulpV3Or1k},
      {sim::ClusterConfig::wolf(1, false), sim::CoreKind::kWolfRv32},
      {sim::ClusterConfig::wolf(1, true), sim::CoreKind::kWolfRv32Builtin},
  };

  const double packed_kb = static_cast<double>(
                               kernels::ProcessingChain(cases[0].cluster, model).footprint().total()) /
                           1024.0;
  for (const Case& c : cases) {
    const std::uint64_t packed = bench::run_chain(c.cluster, model).total();
    const std::uint64_t unpacked =
        unpacked_chain_cycles(sim::isa_costs(c.kind), 10000, kOperands, kClasses);
    table.add_row({std::string(sim::core_kind_name(c.kind)),
                   fmt_cycles_k(static_cast<double>(packed)),
                   fmt_cycles_k(static_cast<double>(unpacked)),
                   fmt_speedup(static_cast<double>(unpacked) / static_cast<double>(packed)),
                   fmt_double(packed_kb, 1), fmt_double(packed_kb * 8.0, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape check: packing wins on memory by 8x unconditionally; on cycles the\n"
            "unpacked layout is competitive only where bit extraction is expensive —\n"
            "but it could never fit the 48-64 kB L1 (§3's 50 kB budget becomes 400 kB).");
  return 0;
}
