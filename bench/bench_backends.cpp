// Standalone kernel-backend benchmark: runs the shared JSON suite (see
// backend_bench.hpp) against every compiled+supported backend and writes
// BENCH_hd_ops.json. Unlike bench_hd_ops this binary has no
// google-benchmark dependency, so it is always built.
//
// Usage: bench_backends [--quick] [--out=PATH]
//   --quick     CI smoke mode: fewer reps, shorter timed blocks
//   --out=PATH  output path (default BENCH_hd_ops.json in the cwd)
#include <cstdio>
#include <string>

#include "bench/backend_bench.hpp"

int main(int argc, char** argv) {
  pulphd::benchjson::SuiteOptions opt;
  std::string out_path = "BENCH_hd_ops.json";
  for (int i = 1; i < argc; ++i) {
    if (!pulphd::benchjson::parse_suite_arg(argv[i], opt, out_path)) {
      std::fprintf(stderr, "usage: %s [--quick] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  pulphd::benchjson::run_suite_and_write(opt, out_path);
  return 0;
}
