// On-device learning cost (§3: the AM "can be continuously updated for
// on-line learning"). Prices one online AM update (accumulate an encoded
// example + re-threshold the prototype) on every platform and compares it
// with one classification — the update must fit the same real-time budget
// for online learning to be viable.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "kernels/training.hpp"

int main() {
  using namespace pulphd;

  std::puts("On-device online-learning cost: one AM update vs one classification,"
            " 10,000-D\n");

  const hd::HdClassifier model = bench::trained_model(10000);
  Xoshiro256StarStar rng(1);
  const hd::Hypervector example = hd::Hypervector::random(10000, rng);

  TextTable table("Online update vs classification (cycles)");
  table.set_header({"Platform", "update acc(k)", "update thr(k)", "update total(k)",
                    "classify(k)", "update/classify"});

  struct Case {
    sim::ClusterConfig cluster;
    bool dma;
  };
  const std::vector<Case> cases = {
      {sim::ClusterConfig::arm_cortex_m4(), false},
      {sim::ClusterConfig::pulpv3(1), true},
      {sim::ClusterConfig::pulpv3(4), true},
      {sim::ClusterConfig::wolf(1, true), true},
      {sim::ClusterConfig::wolf(8, true), true},
  };
  for (const Case& c : cases) {
    std::vector<std::int16_t> counters(10000, 0);
    std::vector<Word> prototype(words_for_dim(10000), 0u);
    const kernels::TrainingRun run =
        kernels::online_update(c.cluster, 10000, example.words(), counters, prototype);
    const std::uint64_t classify = bench::run_chain(c.cluster, model, c.dma).total();
    table.add_row({c.cluster.name,
                   fmt_cycles_k(static_cast<double>(run.accumulate_cycles)),
                   fmt_cycles_k(static_cast<double>(run.threshold_cycles)),
                   fmt_cycles_k(static_cast<double>(run.total())),
                   fmt_cycles_k(static_cast<double>(classify)),
                   fmt_double(static_cast<double>(run.total()) /
                                  static_cast<double>(classify),
                              2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape check: an online update costs the same order as a classification\n"
            "and parallelizes the same way, so a labeled example can be absorbed\n"
            "within one or two detection periods — online learning is viable at mW\n"
            "power, as the paper asserts.");
  return 0;
}
