// Table 2: power comparison of the HD algorithm on the ARM Cortex-M4 and
// PULPv3 at the 10 ms detection latency (10,000-D, N = 1, 4 channels).
//
// For each platform row: run the chain on the cycle model, derive the
// clock frequency that meets 10 ms, evaluate the power model at that
// operating point, and report the boost factor versus the M4 — exactly the
// procedure of §4.2.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pulphd;
  using sim::OperatingPoint;
  using sim::PowerModel;

  std::puts("Reproducing Table 2: power of the HD chain at 10 ms latency, 10,000-D\n");

  const hd::HdClassifier model = bench::trained_model(10000);
  constexpr double kLatencyMs = 10.0;

  struct Row {
    const char* name;
    std::uint64_t cycles;
    double voltage;
    std::uint32_t cores;
    PowerModel power;
    // paper reference values
    double paper_cyc_k, paper_freq, paper_tot_mw, paper_boost;
  };

  const std::uint64_t m4_cycles =
      bench::run_chain(sim::ClusterConfig::arm_cortex_m4(), model, false).total();
  const std::uint64_t p1_cycles =
      bench::run_chain(sim::ClusterConfig::pulpv3(1), model).total();
  const std::uint64_t p4_cycles =
      bench::run_chain(sim::ClusterConfig::pulpv3(4), model).total();

  std::vector<Row> rows = {
      {"ARM CORTEX M4 @1.85V", m4_cycles, 1.85, 1, PowerModel::arm_cortex_m4(), 439,
       43.90, 20.83, 1.0},
      {"PULPv3 1 CORE @0.7V", p1_cycles, 0.7, 1, PowerModel::pulpv3(), 533, 53.30, 4.22,
       4.9},
      {"PULPv3 4 CORES @0.7V", p4_cycles, 0.7, 4, PowerModel::pulpv3(), 143, 14.30, 2.56,
       8.1},
      {"PULPv3 4 CORES @0.5V", p4_cycles, 0.5, 4, PowerModel::pulpv3(), 143, 14.30, 2.10,
       9.9},
  };

  double m4_total_mw = 0.0;
  TextTable table("Table 2 — cycles (CYC), frequency and power at 10 ms latency");
  table.set_header({"Platform", "CYC[k]", "FREQ[MHz]", "FLL[mW]", "SOC[mW]", "CLUSTER[mW]",
                    "TOT[mW]", "BOOST", "paper TOT", "delta"});
  for (const Row& row : rows) {
    const double freq = PowerModel::required_freq_mhz(row.cycles, kLatencyMs);
    const OperatingPoint op{.voltage = row.voltage, .freq_mhz = freq};
    const sim::PowerBreakdown p = row.power.power(row.cores, op);
    if (m4_total_mw == 0.0) m4_total_mw = p.total_mw();
    table.add_row({row.name, fmt_cycles_k(static_cast<double>(row.cycles)),
                   fmt_double(freq, 2), fmt_mw(p.fll_mw), fmt_mw(p.soc_mw),
                   fmt_mw(p.cluster_mw), fmt_mw(p.total_mw()),
                   fmt_speedup(m4_total_mw / p.total_mw()), fmt_mw(row.paper_tot_mw),
                   bench::delta_pct(p.total_mw(), row.paper_tot_mw)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Headline derived claims.
  const PowerModel pulp = PowerModel::pulpv3();
  const double f1 = PowerModel::required_freq_mhz(p1_cycles, kLatencyMs);
  const double f4 = PowerModel::required_freq_mhz(p4_cycles, kLatencyMs);
  const double e1 = pulp.energy_uj(p1_cycles, 1, {.voltage = 0.7, .freq_mhz = f1});
  const double e4 = pulp.energy_uj(p4_cycles, 4, {.voltage = 0.5, .freq_mhz = f4});
  std::printf("\n4-core vs 1-core PULPv3: %.2fx speed-up, %.2fx energy saving"
              " (paper: 3.7x, 2x)\n",
              static_cast<double>(p1_cycles) / static_cast<double>(p4_cycles), e1 / e4);

  // §4.2's low-power-FLL projection.
  const PowerModel next = PowerModel::pulpv3_lowpower_fll();
  const double base_mw = pulp.power(4, {.voltage = 0.5, .freq_mhz = f4}).total_mw();
  const double next_mw = next.power(4, {.voltage = 0.5, .freq_mhz = f4}).total_mw();
  std::printf("Next-gen FLL projection: %.2f mW -> %.2f mW (%.1fx vs M4; paper: ~20x)\n",
              base_mw, next_mw, m4_total_mw / next_mw);
  return 0;
}
