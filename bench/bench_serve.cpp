// bench_serve — serve-path load generator: text (phd1) vs binary (phd2).
//
// Starts a real ClassifyServer (epoll event loop + worker pool) on a Unix
// socket, drives it with pipelined bulk-trial classify requests from N
// concurrent connections, and writes BENCH_serve.json in the same
// pulphd-bench-v1 schema family as BENCH_hd_ops.json:
//
//   {"mode": "binary", "connections": 4, "pipeline": 8,
//    "trials_per_request": 32, "requests": 1200, "bytes_per_request": 10496,
//    "requests_per_s": 911.0, "p50_ms": 8.6, "p99_ms": 14.2}
//
// The interesting comparison is the wire, not the classifier: the model is
// deliberately small (dim 256) and the trials wide (32 channels, a
// dense-array EMG shape) so request decode + response encode are a visible
// share of the work, which is exactly the cost the phd2 binary framing
// removes (raw float32 bits instead of %.9g parse/format).
//
// Before any timing, both transports are checked byte-for-byte against the
// offline HdClassifier::predict_batch path: the expected response is
// encoded with the same ResponseEncoder the server uses, so any
// wire-introduced difference — one float, one byte — fails the run.
//
// After the throughput rows, an overload scenario exercises the client
// retry policy (serve/retry.hpp): a max_connections=1 server refuses the
// other clients with `err code=overloaded`, and they back off and retry
// until served. The observed retry counters land in the JSON under
// "retry" — a degraded run is visible in the artifact, never silent.
//
// A streaming scenario opens one phd2 stream session per connection and
// replays hop-sized pushes, each waiting for its decision frame: the
// mode="stream" rows report windows decided ("requests") and per-window
// send→decision latency (p50/p99) — the window→decision number the
// streaming protocol exists to bound. Every decision frame is compared
// byte-for-byte against the offline predict_batch path.
//
// Flags: --quick (CI smoke: fewer connections/requests), --out=PATH.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "hd/classifier.hpp"
#include "serve/registry.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"

namespace {

using namespace pulphd;
using Clock = std::chrono::steady_clock;

// --- workload --------------------------------------------------------------

constexpr std::size_t kTrialsPerRequest = 32;
constexpr std::size_t kSamplesPerTrial = 20;
constexpr std::size_t kPipelineDepth = 8;
constexpr std::size_t kStreamWindow = 20;  ///< samples per decision window
constexpr std::size_t kStreamHop = 5;      ///< samples between decisions
const char kModelName[] = "bench";

hd::HdClassifier bench_classifier() {
  hd::ClassifierConfig cfg;
  cfg.dim = 256;  // small on purpose: keeps classify cheap so framing cost shows
  cfg.channels = 32;  // dense-array EMG: the bulk-trial wire workload
  cfg.levels = 8;
  cfg.max_value = 7.0;
  cfg.classes = 5;
  cfg.ngram = 3;
  cfg.seed = 0x5e47e;
  hd::HdClassifier clf(cfg);
  Xoshiro256StarStar rng(0x7a41);
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    hd::Trial trial;
    for (std::size_t s = 0; s < 16; ++s) {
      hd::Sample sample(cfg.channels);
      for (auto& v : sample) {
        v = static_cast<float>((rng.next() + 997 * c) % 7000u) / 1000.0f;
      }
      trial.push_back(std::move(sample));
    }
    clf.train(trial, c);
  }
  return clf;
}

std::vector<hd::Trial> bench_trials() {
  Xoshiro256StarStar rng(0xb3c4);
  std::vector<hd::Trial> trials(kTrialsPerRequest);
  for (auto& trial : trials) {
    for (std::size_t s = 0; s < kSamplesPerTrial; ++s) {
      hd::Sample sample(32);
      for (auto& v : sample) v = static_cast<float>(rng.next() % 7000u) / 1000.0f;
      trial.push_back(std::move(sample));
    }
  }
  return trials;
}

/// A continuous sample stream long enough for `windows` hop-spaced decisions.
std::vector<hd::Sample> bench_stream(std::size_t windows) {
  const std::size_t total = kStreamWindow + (windows - 1) * kStreamHop;
  Xoshiro256StarStar rng(0x57e4);
  std::vector<hd::Sample> stream(total);
  for (auto& sample : stream) {
    sample.resize(32);
    for (auto& v : sample) v = static_cast<float>(rng.next() % 7000u) / 1000.0f;
  }
  return stream;
}

// --- blocking client plumbing ---------------------------------------------

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("bench_serve: socket failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("bench_serve: connect failed: " + path);
  }
  return fd;
}

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("bench_serve: send failed");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

std::string read_exact(int fd, std::size_t bytes) {
  std::string out(bytes, '\0');
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::read(fd, out.data() + got, bytes - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("bench_serve: read failed");
    }
    if (n == 0) throw std::runtime_error("bench_serve: server closed mid-response");
    got += static_cast<std::size_t>(n);
  }
  return out;
}

// --- rows ------------------------------------------------------------------

struct ServeRow {
  std::string mode;  ///< "text", "binary", or "stream" (per-window latency)
  std::size_t connections = 1;
  std::size_t pipeline = 1;
  std::size_t requests = 0;  ///< total across all connections
  std::size_t bytes_per_request = 0;
  double requests_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

/// One connection's share of a load row: a sliding window of `depth`
/// outstanding requests, every response checked against the expected bytes
/// (all requests are identical, so all responses are too — verified
/// byte-for-byte in the preflight).
void drive_connection(const std::string& socket_path, bool binary,
                      const std::string& request, const std::string& expected_response,
                      std::size_t total, std::size_t depth,
                      std::vector<double>& latencies_ms, std::atomic<int>& failures) {
  try {
    const int fd = connect_unix(socket_path);
    if (binary) send_all(fd, serve::kBinaryMagic);
    std::deque<Clock::time_point> sent_at;
    std::size_t sent = 0;
    std::size_t done = 0;
    while (done < total) {
      while (sent < total && sent - done < depth) {
        send_all(fd, request);
        sent_at.push_back(Clock::now());
        ++sent;
      }
      const std::string response = read_exact(fd, expected_response.size());
      const auto now = Clock::now();
      if (response != expected_response) {
        throw std::runtime_error("bench_serve: response bytes diverged from offline path");
      }
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now - sent_at.front()).count());
      sent_at.pop_front();
      ++done;
    }
    ::close(fd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "connection worker: %s\n", e.what());
    failures.fetch_add(1);
  }
}

ServeRow run_load(const std::string& socket_path, bool binary, const std::string& request,
                  const std::string& expected_response, std::size_t connections,
                  std::size_t depth, std::size_t requests_per_connection) {
  std::vector<std::vector<double>> latencies(connections);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const auto begin = Clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      drive_connection(socket_path, binary, request, expected_response,
                       requests_per_connection, depth, latencies[c], failures);
    });
  }
  for (auto& t : threads) t.join();
  const auto end = Clock::now();
  if (failures.load() != 0) throw std::runtime_error("bench_serve: load generation failed");

  std::vector<double> all_ms;
  for (const auto& per_conn : latencies) {
    all_ms.insert(all_ms.end(), per_conn.begin(), per_conn.end());
  }
  std::sort(all_ms.begin(), all_ms.end());

  ServeRow row;
  row.mode = binary ? "binary" : "text";
  row.connections = connections;
  row.pipeline = depth;
  row.requests = connections * requests_per_connection;
  row.bytes_per_request = request.size();
  const double seconds = std::chrono::duration<double>(end - begin).count();
  row.requests_per_s = static_cast<double>(row.requests) / seconds;
  row.p50_ms = percentile(all_ms, 0.50);
  row.p99_ms = percentile(all_ms, 0.99);
  return row;
}

// --- streaming scenario -----------------------------------------------------

/// Precomputed bytes for one whole streaming session on the binary wire:
/// open, a prefill push (window − hop samples, emits nothing), then one
/// hop-sized push per window — each of which the server must answer with
/// exactly one decision frame, byte-identical to the offline batch path.
struct StreamScript {
  std::string open_request;
  std::string opened_expected;
  std::string prefill_request;
  std::string prefill_expected;
  std::vector<std::string> push_requests;   ///< one per window
  std::vector<std::string> push_expected;   ///< stream_windows(w, {offline[w]})
  std::string close_request;
  std::string closed_expected;
};

StreamScript make_stream_script(const hd::HdClassifier& classifier, std::size_t windows) {
  const std::vector<hd::Sample> stream = bench_stream(windows);
  std::vector<hd::Trial> slices(windows);
  for (std::size_t w = 0; w < windows; ++w) {
    slices[w].assign(stream.begin() + static_cast<std::ptrdiff_t>(w * kStreamHop),
                     stream.begin() + static_cast<std::ptrdiff_t>(w * kStreamHop + kStreamWindow));
  }
  const std::vector<hd::AmDecision> offline = classifier.predict_batch(slices);

  serve::ResponseEncoder encoder(serve::Wire::kBinary);
  StreamScript script;
  script.open_request =
      serve::format_binary_stream_open_request(kModelName, kStreamWindow, kStreamHop);
  script.opened_expected = encoder.stream_opened(kModelName, kStreamWindow, kStreamHop);
  const std::span<const hd::Sample> samples(stream);
  script.prefill_request = serve::format_binary_stream_push_request(
      samples.subspan(0, kStreamWindow - kStreamHop));
  script.prefill_expected = encoder.stream_windows(0, std::span<const hd::AmDecision>());
  for (std::size_t w = 0; w < windows; ++w) {
    script.push_requests.push_back(serve::format_binary_stream_push_request(
        samples.subspan(kStreamWindow - kStreamHop + w * kStreamHop, kStreamHop)));
    script.push_expected.push_back(
        encoder.stream_windows(w, std::span<const hd::AmDecision>(&offline[w], 1)));
  }
  script.close_request = serve::format_binary_command(serve::kFrameStreamClose);
  script.closed_expected = encoder.stream_closed(windows);
  return script;
}

/// One connection running one full streaming session, unpipelined: each
/// hop push waits for its decision frame, and the send→decision time is
/// the per-window latency this benchmark exists to publish. Every response
/// is compared byte-for-byte against the offline path.
void drive_stream_connection(const std::string& socket_path, const StreamScript& script,
                             std::vector<double>& latencies_ms, std::atomic<int>& failures) {
  try {
    const int fd = connect_unix(socket_path);
    send_all(fd, serve::kBinaryMagic);
    const auto exchange = [fd](const std::string& request, const std::string& expected) {
      send_all(fd, request);
      if (read_exact(fd, expected.size()) != expected) {
        throw std::runtime_error(
            "bench_serve: stream response bytes diverged from offline path");
      }
    };
    exchange(script.open_request, script.opened_expected);
    exchange(script.prefill_request, script.prefill_expected);
    for (std::size_t w = 0; w < script.push_requests.size(); ++w) {
      const auto t0 = Clock::now();
      exchange(script.push_requests[w], script.push_expected[w]);
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    }
    exchange(script.close_request, script.closed_expected);
    ::close(fd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stream worker: %s\n", e.what());
    failures.fetch_add(1);
  }
}

ServeRow run_stream(const std::string& socket_path, const StreamScript& script,
                    std::size_t connections) {
  std::vector<std::vector<double>> latencies(connections);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const auto begin = Clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      drive_stream_connection(socket_path, script, latencies[c], failures);
    });
  }
  for (auto& t : threads) t.join();
  const auto end = Clock::now();
  if (failures.load() != 0) throw std::runtime_error("bench_serve: stream scenario failed");

  std::vector<double> all_ms;
  for (const auto& per_conn : latencies) {
    all_ms.insert(all_ms.end(), per_conn.begin(), per_conn.end());
  }
  std::sort(all_ms.begin(), all_ms.end());

  ServeRow row;
  row.mode = "stream";
  row.connections = connections;
  row.pipeline = 1;  // hop pushes are latency probes, never overlapped
  row.requests = connections * script.push_requests.size();  // = windows decided
  row.bytes_per_request = script.push_requests.empty() ? 0 : script.push_requests[0].size();
  const double seconds = std::chrono::duration<double>(end - begin).count();
  row.requests_per_s = static_cast<double>(row.requests) / seconds;
  row.p50_ms = percentile(all_ms, 0.50);
  row.p99_ms = percentile(all_ms, 0.99);
  return row;
}

// --- overload / retry scenario ---------------------------------------------

/// One request/response exchange on a connection the server may have
/// already rejected (`err code=overloaded`) and closed: a send or read
/// torn down by the peer (EPIPE/ECONNRESET) returns false — the same
/// rejection seen from the other side — and any other failure throws.
/// Reads until `limit` bytes or EOF, since the rejection line is short.
bool try_exchange(int fd, std::string_view request, std::size_t limit, std::string& response) {
  while (!request.empty()) {
    const ssize_t n = ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw std::runtime_error("bench_serve: send failed");
    }
    request.remove_prefix(static_cast<std::size_t>(n));
  }
  response.clear();
  char chunk[4096];
  while (response.size() < limit) {
    const std::size_t want = std::min(sizeof(chunk), limit - response.size());
    const ssize_t n = ::read(fd, chunk, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return false;
      throw std::runtime_error("bench_serve: read failed");
    }
    if (n == 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

/// `clients` text-mode clients hammer a max_connections=1 server, one
/// connection per request. Every refusal (`err code=overloaded`) is
/// retried with capped exponential backoff until served; the returned
/// stats say how hard the clients had to try.
serve::RetryStats run_overload(const std::string& socket_path, const std::string& request,
                               const std::string& expected_response, std::size_t clients,
                               std::size_t requests_per_client) {
  std::vector<serve::RetryStats> stats(clients);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::BackoffPolicy policy;
        policy.initial = std::chrono::milliseconds(2);
        policy.cap = std::chrono::milliseconds(50);
        policy.max_attempts = 200;  // generous: the point is to converge, not give up
        policy.jitter_seed = 0x9eb1 + c;
        for (std::size_t r = 0; r < requests_per_client; ++r) {
          serve::Backoff backoff(policy);
          for (;;) {
            const int fd =
                serve::connect_unix_retry(socket_path, policy, &stats[c]);
            std::string response;
            const bool io_ok = try_exchange(fd, request, expected_response.size(), response);
            ::close(fd);
            if (io_ok && response == expected_response) break;
            // A torn exchange, an empty read (the rejection line was
            // discarded by the RST) or the rejection line itself all mean
            // the same thing: the server was at --max-conns. Anything
            // else is a real divergence.
            if (io_ok && !response.empty() &&
                response.rfind("err code=overloaded", 0) != 0) {
              throw std::runtime_error("bench_serve: unexpected overload-scenario response");
            }
            ++stats[c].overloaded_retries;
            const auto delay = backoff.next_delay();
            if (!delay) {
              ++stats[c].give_ups;
              throw std::runtime_error("bench_serve: overload retry budget exhausted");
            }
            std::this_thread::sleep_for(*delay);
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "overload client: %s\n", e.what());
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (failures.load() != 0) throw std::runtime_error("bench_serve: overload scenario failed");
  serve::RetryStats total;
  for (const serve::RetryStats& s : stats) {
    total.connect_retries += s.connect_retries;
    total.overloaded_retries += s.overloaded_retries;
    total.give_ups += s.give_ups;
  }
  return total;
}

// --- output ----------------------------------------------------------------

void write_json(const std::vector<ServeRow>& rows, const serve::RetryStats& retry,
                const std::string& path, bool quick, std::size_t workers) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("bench_serve: cannot open " + path);
  out << "{\n  \"schema\": \"pulphd-bench-v1\",\n  \"bench\": \"bench_serve\",\n";
  out << "  \"cpu_features\": \"" << cpu_feature_summary() << "\",\n";
  out << "  \"cores\": " << ThreadPool::hardware_threads() << ",\n";
  out << "  \"serve_workers\": " << workers << ",\n";
  out << "  \"trials_per_request\": " << kTrialsPerRequest << ",\n";
  out << "  \"samples_per_trial\": " << kSamplesPerTrial << ",\n";
  out << "  \"stream_window\": " << kStreamWindow << ",\n";
  out << "  \"stream_hop\": " << kStreamHop << ",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n  \"rows\": [\n";
  char buf[64];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServeRow& r = rows[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"connections\": " << r.connections
        << ", \"pipeline\": " << r.pipeline << ", \"requests\": " << r.requests
        << ", \"bytes_per_request\": " << r.bytes_per_request;
    std::snprintf(buf, sizeof(buf), "%.1f", r.requests_per_s);
    out << ", \"requests_per_s\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", r.p50_ms);
    out << ", \"p50_ms\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", r.p99_ms);
    out << ", \"p99_ms\": " << buf << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"retry\": {\"connect_retries\": " << retry.connect_retries
      << ", \"overloaded_retries\": " << retry.overloaded_retries
      << ", \"give_ups\": " << retry.give_ups << "}\n}\n";
  if (!out.flush()) throw std::runtime_error("bench_serve: write failed: " + path);
}

void print_rows(const std::vector<ServeRow>& rows) {
  std::printf("%-7s %6s %9s %9s %11s %13s %9s %9s\n", "mode", "conns", "pipeline",
              "requests", "req bytes", "requests/s", "p50 ms", "p99 ms");
  for (const ServeRow& r : rows) {
    std::printf("%-7s %6zu %9zu %9zu %11zu %13.1f %9.3f %9.3f\n", r.mode.c_str(),
                r.connections, r.pipeline, r.requests, r.bytes_per_request,
                r.requests_per_s, r.p50_ms, r.p99_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: bench_serve [--quick] [--out=PATH]\n");
      return 2;
    }
  }

  serve::ModelRegistry registry;
  registry.add(kModelName, bench_classifier());

  serve::ServeConfig config;
  config.unix_path = "/tmp/pulphd_bench_serve." + std::to_string(::getpid()) + ".sock";
  ::unlink(config.unix_path.c_str());
  serve::ClassifyServer server(registry, config);
  server.bind_and_listen();
  std::thread serve_thread([&server] { server.run(); });

  try {
    const std::vector<hd::Trial> trials = bench_trials();
    const std::vector<hd::AmDecision> offline =
        registry.resolve(kModelName)->classifier.predict_batch(trials);

    // The exact bytes each wire must produce — encoded with the server's
    // own ResponseEncoder, so the comparison is the offline path itself.
    const std::string text_request = serve::format_classify_request(kModelName, trials);
    const std::string binary_request =
        serve::format_binary_classify_request(kModelName, trials);
    const std::string text_expected =
        serve::ResponseEncoder(serve::Wire::kText).classify(kModelName, offline);
    const std::string binary_expected =
        serve::ResponseEncoder(serve::Wire::kBinary).classify(kModelName, offline);

    // Correctness preflight on both transports (also warms the server).
    for (const bool binary : {false, true}) {
      const int fd = connect_unix(config.unix_path);
      if (binary) send_all(fd, serve::kBinaryMagic);
      send_all(fd, binary ? binary_request : text_request);
      const std::string& expected = binary ? binary_expected : text_expected;
      const std::string got = read_exact(fd, expected.size());
      ::close(fd);
      if (got != expected) {
        throw std::runtime_error(std::string("bench_serve: ") +
                                 (binary ? "binary" : "text") +
                                 " response is not bit-identical to the offline path");
      }
      std::printf("%s preflight: %zu-trial response bit-identical to offline (%zu bytes)\n",
                  binary ? "binary" : "text", trials.size(), expected.size());
    }

    const std::size_t per_conn = quick ? 30 : 200;
    const std::vector<std::size_t> connection_sweep =
        quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};

    std::vector<ServeRow> rows;
    for (const bool binary : {false, true}) {
      const std::string& request = binary ? binary_request : text_request;
      const std::string& expected = binary ? binary_expected : text_expected;
      // Unpipelined single connection: pure request latency.
      rows.push_back(run_load(config.unix_path, binary, request, expected, 1, 1, per_conn));
      // Pipelined connection sweep: throughput.
      for (const std::size_t conns : connection_sweep) {
        rows.push_back(run_load(config.unix_path, binary, request, expected, conns,
                                kPipelineDepth, per_conn));
      }
    }
    // Streaming scenario: window→decision latency, the number the streaming
    // protocol exists to bound. Every decision frame is byte-checked against
    // the offline path, so this is also the streaming correctness preflight.
    const StreamScript script = make_stream_script(
        registry.resolve(kModelName)->classifier, quick ? std::size_t{40} : std::size_t{300});
    for (const std::size_t conns : connection_sweep) {
      rows.push_back(run_stream(config.unix_path, script, conns));
    }
    std::printf("stream preflight: %zu windows/session bit-identical to offline\n",
                script.push_requests.size());
    print_rows(rows);

    // The headline number this benchmark exists to track.
    double best_text = 0.0;
    double best_binary = 0.0;
    for (const ServeRow& r : rows) {
      if (r.mode == "stream") continue;  // windows/s, not comparable to requests/s
      double& best = r.mode == "binary" ? best_binary : best_text;
      best = std::max(best, r.requests_per_s);
    }
    std::printf("binary/text peak throughput: %.2fx (binary %.1f req/s, text %.1f req/s)\n",
                best_binary / best_text, best_binary, best_text);

    // Overload scenario: a capacity-1 server, clients that must retry.
    serve::ServeConfig overload_config;
    overload_config.unix_path =
        "/tmp/pulphd_bench_overload." + std::to_string(::getpid()) + ".sock";
    overload_config.max_connections = 1;
    ::unlink(overload_config.unix_path.c_str());
    serve::ClassifyServer overload_server(registry, overload_config);
    overload_server.bind_and_listen();
    std::thread overload_thread([&overload_server] { overload_server.run(); });
    serve::RetryStats retry;
    try {
      retry = run_overload(overload_config.unix_path, text_request, text_expected,
                           quick ? 2 : 4, quick ? 2 : 4);
    } catch (...) {
      overload_server.stop();
      overload_thread.join();
      throw;
    }
    overload_server.stop();
    overload_thread.join();
    std::printf(
        "overload scenario: %llu overloaded retries, %llu connect retries, %llu give-ups\n",
        static_cast<unsigned long long>(retry.overloaded_retries),
        static_cast<unsigned long long>(retry.connect_retries),
        static_cast<unsigned long long>(retry.give_ups));

    write_json(rows, retry, out_path, quick, resolve_threads(config.workers));
    std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    server.stop();
    serve_thread.join();
    return 1;
  }

  server.stop();
  serve_thread.join();
  return 0;
}
