// Ablation: graceful degradation (§4.1). "the HD classifier exhibits a
// graceful degradation with lower dimensionality, or faulty components,
// allowing a trade-off between the application's accuracy and the
// available hardware resources".
//
// Injects symmetric bit errors into the trained associative memory and
// measures EMG accuracy as the error rate grows; repeats at 10,000-D and
// 2,000-D to show how dimensionality buys fault margin.
#include <cstdio>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "emg/protocol.hpp"
#include "hd/noise.hpp"

namespace {

using namespace pulphd;

double accuracy_with_faulty_am(const emg::EmgDataset& dataset, std::size_t dim,
                               double bit_error_rate) {
  const emg::ProtocolConfig protocol;
  double accuracy_sum = 0.0;
  for (std::size_t s = 0; s < dataset.config.subjects; ++s) {
    hd::HdClassifier clf = emg::train_hd_subject(dataset, s, dim, protocol);
    const hd::AssociativeMemory faulty =
        hd::am_with_faults(clf.am(), bit_error_rate, 0xfa117 + s);
    const auto split = dataset.split(s, protocol.train_fraction);
    std::size_t correct = 0;
    for (const emg::EmgTrial* trial : split.test) {
      const hd::Hypervector query =
          clf.encode_query(emg::active_segment(trial->envelope, protocol));
      correct += faulty.classify(query).label == trial->label;
    }
    accuracy_sum += static_cast<double>(correct) / static_cast<double>(split.test.size());
  }
  return accuracy_sum / static_cast<double>(dataset.config.subjects);
}

}  // namespace

int main() {
  std::puts("Ablation: graceful degradation under faulty AM components (Section 4.1)\n");

  const emg::EmgDataset dataset = emg::generate_dataset(emg::GeneratorConfig{});
  const std::vector<double> error_rates = {0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.45};

  TextTable table("Mean EMG accuracy vs AM bit-error rate");
  table.set_header({"bit-error rate", "accuracy @ 10,000-D", "accuracy @ 2,000-D"});
  CsvWriter csv("fault_tolerance.csv", {"error_rate", "accuracy_10000d", "accuracy_2000d"});

  for (const double rate : error_rates) {
    const double a10k = accuracy_with_faulty_am(dataset, 10000, rate);
    const double a2k = accuracy_with_faulty_am(dataset, 2000, rate);
    table.add_row({fmt_percent(rate), fmt_percent(a10k), fmt_percent(a2k)});
    csv.add_row({std::to_string(rate), std::to_string(a10k), std::to_string(a2k)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape check: accuracy degrades gracefully — still near its fault-free\n"
            "level at 20-30% corrupted cells, collapsing only as the rate nears 50%\n"
            "(where the code's information is destroyed). Higher D degrades later.");
  std::puts("Series written to fault_tolerance.csv");
  return 0;
}
