// Fig. 4: performance of the accelerated chain with large N-grams when
// executing on 1..8 Wolf cores (built-ins, 10,000-D). The paper's claim:
// "the accelerator is able to scale such excessive workload perfectly
// among the cores".
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

int main() {
  using namespace pulphd;

  std::puts("Reproducing Fig. 4: cycles vs N-gram size on 1/2/4/8 Wolf cores,"
            " built-in, 10,000-D\n");

  const std::vector<std::size_t> ngrams = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<std::uint32_t> core_counts = {1, 2, 4, 8};

  TextTable table("Fig. 4 — kilocycles per classification");
  std::vector<std::string> header{"N \\ cores"};
  for (const std::uint32_t c : core_counts) header.push_back(std::to_string(c) + " cores");
  header.push_back("speed-up 1->8");
  table.set_header(header);

  CsvWriter csv("fig4_cycles_vs_ngram.csv", [&] {
    std::vector<std::string> h{"ngram"};
    for (const std::uint32_t c : core_counts) h.push_back("cycles_" + std::to_string(c) + "c");
    return h;
  }());

  for (const std::size_t n : ngrams) {
    const hd::HdClassifier model = bench::trained_model(10000, 4, n);
    std::vector<std::string> row{std::to_string(n)};
    std::vector<std::string> csv_row{std::to_string(n)};
    std::uint64_t cycles_1 = 0;
    std::uint64_t cycles_8 = 0;
    for (const std::uint32_t cores : core_counts) {
      const std::uint64_t cycles =
          bench::run_chain(sim::ClusterConfig::wolf(cores, true), model).total();
      if (cores == 1) cycles_1 = cycles;
      if (cores == 8) cycles_8 = cycles;
      row.push_back(fmt_cycles_k(static_cast<double>(cycles)));
      csv_row.push_back(std::to_string(cycles));
    }
    row.push_back(fmt_speedup(static_cast<double>(cycles_1) / static_cast<double>(cycles_8)));
    table.add_row(row);
    csv.add_row(csv_row);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape check: the 1->8-core speed-up approaches the ideal 8x as N grows\n"
            "(larger windows amortize the constant fork/join overhead).");
  std::puts("Series written to fig4_cycles_vs_ngram.csv");
  return 0;
}
