// google-benchmark microbenchmarks of the host-side HD library: raw
// wall-clock throughput of the MAP operations (not part of the paper's
// tables; a sanity harness for the golden model's performance).
#include <benchmark/benchmark.h>

#include "hd/associative_memory.hpp"
#include "hd/encoder.hpp"
#include "hd/item_memory.hpp"
#include "hd/ops.hpp"
#include "kernels/primitives.hpp"

namespace {

using namespace pulphd;
using hd::Hypervector;

void BM_Bind(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(1);
  const Hypervector a = Hypervector::random(dim, rng);
  const Hypervector b = Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a ^ b);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Bind)->Arg(200)->Arg(2000)->Arg(10000);

void BM_Hamming(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(2);
  const Hypervector a = Hypervector::random(dim, rng);
  const Hypervector b = Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Hamming)->Arg(200)->Arg(2000)->Arg(10000);

void BM_Majority(benchmark::State& state) {
  const auto operands = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(3);
  std::vector<Hypervector> inputs;
  for (std::size_t i = 0; i < operands; ++i) {
    inputs.push_back(Hypervector::random(10000, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hd::majority(inputs));
  }
}
BENCHMARK(BM_Majority)->Arg(5)->Arg(9)->Arg(33)->Arg(257);

void BM_Rotate(benchmark::State& state) {
  Xoshiro256StarStar rng(4);
  const Hypervector a = Hypervector::random(10000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.rotated(1));
  }
}
BENCHMARK(BM_Rotate);

void BM_SpatialEncode(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const hd::ItemMemory im(channels, 10000, 5);
  const hd::ContinuousItemMemory cim(22, 10000, 0.0, 21.0, 6);
  const hd::SpatialEncoder enc(im, cim, channels);
  std::vector<float> sample(channels, 9.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(sample));
  }
}
BENCHMARK(BM_SpatialEncode)->Arg(4)->Arg(64)->Arg(256);

void BM_Ngram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(7);
  std::vector<Hypervector> window;
  for (std::size_t i = 0; i < n; ++i) window.push_back(Hypervector::random(10000, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hd::ngram(window));
  }
}
BENCHMARK(BM_Ngram)->Arg(2)->Arg(5)->Arg(10);

void BM_BundleAccumulate(benchmark::State& state) {
  Xoshiro256StarStar rng(8);
  const Hypervector hv = Hypervector::random(10000, rng);
  hd::BundleAccumulator acc(10000);
  for (auto _ : state) {
    acc.add(hv);
    benchmark::DoNotOptimize(acc.count());
  }
}
BENCHMARK(BM_BundleAccumulate);

// The AM inference hot path: per-query loop vs. the word-parallel batch
// kernel. items_processed is queries, so the reported items/s is the
// classify throughput in queries/sec.

hd::AssociativeMemory trained_am(std::size_t classes, std::size_t dim) {
  hd::AssociativeMemory am(classes, dim, 0xbadc0ffeULL);
  Xoshiro256StarStar rng(11);
  for (std::size_t c = 0; c < classes; ++c) {
    am.train(c, Hypervector::random(dim, rng));
  }
  return am;
}

std::vector<Hypervector> random_queries(std::size_t n, std::size_t dim) {
  Xoshiro256StarStar rng(12);
  std::vector<Hypervector> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queries.push_back(Hypervector::random(dim, rng));
  return queries;
}

void BM_ClassifyPerQuery(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const hd::AssociativeMemory am = trained_am(5, 10000);
  const std::vector<Hypervector> queries = random_queries(batch, 10000);
  for (auto _ : state) {
    for (const Hypervector& q : queries) {
      benchmark::DoNotOptimize(am.classify(q));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ClassifyPerQuery)->Arg(1)->Arg(64)->Arg(1024);

void BM_ClassifyBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const hd::AssociativeMemory am = trained_am(5, 10000);
  const std::vector<Hypervector> queries = random_queries(batch, 10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(am.classify_batch(queries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ClassifyBatch)->Arg(1)->Arg(64)->Arg(1024);

void BM_HammingDistanceMatrix(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const std::size_t classes = 5;
  const std::size_t words = pulphd::words_for_dim(10000);
  Xoshiro256StarStar rng(13);
  std::vector<pulphd::Word> queries(batch * words);
  std::vector<pulphd::Word> prototypes(classes * words);
  for (auto& w : queries) w = static_cast<pulphd::Word>(rng.next());
  for (auto& w : prototypes) w = static_cast<pulphd::Word>(rng.next());
  std::vector<std::uint32_t> out(batch * classes);
  for (auto _ : state) {
    kernels::hamming_distance_matrix(queries, prototypes, batch, classes, words, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_HammingDistanceMatrix)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
