// google-benchmark microbenchmarks of the host-side HD library: raw
// wall-clock throughput of the MAP operations (not part of the paper's
// tables; a sanity harness for the golden model's performance).
//
// The custom main below first runs the shared JSON kernel-backend suite
// (backend_bench.hpp) and writes BENCH_hd_ops.json — per-kernel rows of
// {backend, threads, dim, ns/query, GB/s} with warmup + median-of-N timing
// — then hands any remaining arguments to google-benchmark. `--quick`
// (the CI smoke mode) runs a reduced suite and skips the micro benches.
#include <benchmark/benchmark.h>

#include <deque>
#include <string>

#include "bench/backend_bench.hpp"
#include "common/thread_pool.hpp"
#include "kernels/backend.hpp"
#include "hd/associative_memory.hpp"
#include "hd/classifier.hpp"
#include "hd/encoder.hpp"
#include "hd/item_memory.hpp"
#include "hd/ops.hpp"
#include "kernels/primitives.hpp"

namespace {

using namespace pulphd;
using hd::Hypervector;

void BM_Bind(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(1);
  const Hypervector a = Hypervector::random(dim, rng);
  const Hypervector b = Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a ^ b);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Bind)->Arg(200)->Arg(2000)->Arg(10000);

void BM_Hamming(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(2);
  const Hypervector a = Hypervector::random(dim, rng);
  const Hypervector b = Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Hamming)->Arg(200)->Arg(2000)->Arg(10000);

void BM_Majority(benchmark::State& state) {
  const auto operands = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(3);
  std::vector<Hypervector> inputs;
  for (std::size_t i = 0; i < operands; ++i) {
    inputs.push_back(Hypervector::random(10000, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hd::majority(inputs));
  }
}
BENCHMARK(BM_Majority)->Arg(5)->Arg(9)->Arg(33)->Arg(257);

void BM_Rotate(benchmark::State& state) {
  Xoshiro256StarStar rng(4);
  const Hypervector a = Hypervector::random(10000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.rotated(1));
  }
}
BENCHMARK(BM_Rotate);

void BM_SpatialEncode(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const hd::ItemMemory im(channels, 10000, 5);
  const hd::ContinuousItemMemory cim(22, 10000, 0.0, 21.0, 6);
  const hd::SpatialEncoder enc(im, cim, channels);
  std::vector<float> sample(channels, 9.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(sample));
  }
}
BENCHMARK(BM_SpatialEncode)->Arg(4)->Arg(64)->Arg(256);

void BM_SpatialEncodeLegacy(benchmark::State& state) {
  // The pre-arena encode path, reproduced for the before/after comparison:
  // bind_channels allocates a fresh std::vector<Hypervector> (one heap
  // hypervector per channel, per sample) and majority() re-walks it. The
  // current encode() gathers bound rows into a reused thread-local arena
  // and thresholds through the dispatched backend.
  const auto channels = static_cast<std::size_t>(state.range(0));
  const hd::ItemMemory im(channels, 10000, 5);
  const hd::ContinuousItemMemory cim(22, 10000, 0.0, 21.0, 6);
  const hd::SpatialEncoder enc(im, cim, channels);
  std::vector<float> sample(channels, 9.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hd::majority(enc.bind_channels(sample)));
  }
}
BENCHMARK(BM_SpatialEncodeLegacy)->Arg(4)->Arg(64)->Arg(256);

// TemporalEncoder::push before/after the copy-churn fix. The legacy
// implementation re-materialized the whole n-gram window into a fresh
// std::vector<Hypervector> on every pushed sample (n hypervector copies +
// one allocation per push); the current one reduces the deque in place.
// Measured here (Release, 10,000-D): dropping the window copy is worth
// ~6-14% on its own (n = 2: 1.24 vs 1.42 us/push; n = 10: 10.4 vs 11.2).
// The companion fix — the word-parallel Hypervector::rotated, replacing the
// bit-serial copy that dominated every n-gram — moved the same push from
// ~330 us to ~4.8 us at n = 5 (~69x); BM_TemporalPushLegacy shares that
// gain, so the pair below isolates the copy churn alone.

std::vector<Hypervector> random_spatials(std::size_t count, std::size_t dim) {
  Xoshiro256StarStar rng(21);
  std::vector<Hypervector> spatials;
  spatials.reserve(count);
  for (std::size_t i = 0; i < count; ++i) spatials.push_back(Hypervector::random(dim, rng));
  return spatials;
}

void BM_TemporalPush(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Hypervector> spatials = random_spatials(16, 10000);
  hd::TemporalEncoder enc(n, 10000);
  Hypervector out(10000);
  std::size_t i = 0;
  for (auto _ : state) {
    if (enc.push(spatials[i], &out)) benchmark::DoNotOptimize(out);
    i = (i + 1) % spatials.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TemporalPush)->Arg(2)->Arg(5)->Arg(10);

void BM_TemporalPushLegacy(benchmark::State& state) {
  // The pre-fix implementation, reproduced verbatim for the before/after
  // comparison: window copy into a vector + hd::ngram on every push.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Hypervector> spatials = random_spatials(16, 10000);
  std::deque<Hypervector> window;
  Hypervector out(10000);
  std::size_t i = 0;
  for (auto _ : state) {
    window.push_back(spatials[i]);
    if (window.size() > n) window.pop_front();
    if (window.size() == n) {
      const std::vector<Hypervector> win(window.begin(), window.end());
      out = hd::ngram(win);
      benchmark::DoNotOptimize(out);
    }
    i = (i + 1) % spatials.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TemporalPushLegacy)->Arg(2)->Arg(5)->Arg(10);

void BM_Ngram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(7);
  std::vector<Hypervector> window;
  for (std::size_t i = 0; i < n; ++i) window.push_back(Hypervector::random(10000, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hd::ngram(window));
  }
}
BENCHMARK(BM_Ngram)->Arg(2)->Arg(5)->Arg(10);

void BM_BundleAccumulate(benchmark::State& state) {
  Xoshiro256StarStar rng(8);
  const Hypervector hv = Hypervector::random(10000, rng);
  hd::BundleAccumulator acc(10000);
  for (auto _ : state) {
    acc.add(hv);
    benchmark::DoNotOptimize(acc.count());
  }
}
BENCHMARK(BM_BundleAccumulate);

// The AM inference hot path: per-query loop vs. the word-parallel batch
// kernel. items_processed is queries, so the reported items/s is the
// classify throughput in queries/sec.

hd::AssociativeMemory trained_am(std::size_t classes, std::size_t dim) {
  hd::AssociativeMemory am(classes, dim, 0xbadc0ffeULL);
  Xoshiro256StarStar rng(11);
  for (std::size_t c = 0; c < classes; ++c) {
    am.train(c, Hypervector::random(dim, rng));
  }
  return am;
}

std::vector<Hypervector> random_queries(std::size_t n, std::size_t dim) {
  Xoshiro256StarStar rng(12);
  std::vector<Hypervector> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queries.push_back(Hypervector::random(dim, rng));
  return queries;
}

void BM_ClassifyPerQuery(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const hd::AssociativeMemory am = trained_am(5, 10000);
  const std::vector<Hypervector> queries = random_queries(batch, 10000);
  for (auto _ : state) {
    for (const Hypervector& q : queries) {
      benchmark::DoNotOptimize(am.classify(q));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ClassifyPerQuery)->Arg(1)->Arg(64)->Arg(1024);

void BM_ClassifyBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const hd::AssociativeMemory am = trained_am(5, 10000);
  const std::vector<Hypervector> queries = random_queries(batch, 10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(am.classify_batch(queries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ClassifyBatch)->Arg(1)->Arg(64)->Arg(1024);

void BM_HammingDistanceMatrix(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const std::size_t classes = 5;
  const std::size_t words = pulphd::words_for_dim(10000);
  Xoshiro256StarStar rng(13);
  std::vector<pulphd::Word> queries(batch * words);
  std::vector<pulphd::Word> prototypes(classes * words);
  for (auto& w : queries) w = static_cast<pulphd::Word>(rng.next());
  for (auto& w : prototypes) w = static_cast<pulphd::Word>(rng.next());
  std::vector<std::uint32_t> out(batch * classes);
  for (auto _ : state) {
    kernels::hamming_distance_matrix(queries, prototypes, batch, classes, words, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_HammingDistanceMatrix)->Arg(64)->Arg(1024);

// ---------------------------------------------------------------------------
// Multi-threaded batch throughput: the same batch kernels sharded over host
// threads. Args are {batch, threads}; items/s is queries (or trials) per
// second, so the thread scaling reads directly off the items/s column.
// threads = 1 takes the serial code path (no pool interaction) and is the
// baseline the 2/4/8-thread rows are compared against; every thread count
// produces bit-identical decisions.
// ---------------------------------------------------------------------------

void BM_ClassifyBatchThreads(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const hd::AssociativeMemory am = trained_am(5, 10000);
  const std::vector<Hypervector> queries = random_queries(batch, 10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(am.classify_batch(queries, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ClassifyBatchThreads)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({1024, 8});

void BM_HammingDistanceMatrixThreads(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::size_t classes = 5;
  const std::size_t words = pulphd::words_for_dim(10000);
  Xoshiro256StarStar rng(14);
  std::vector<pulphd::Word> queries(batch * words);
  std::vector<pulphd::Word> prototypes(classes * words);
  for (auto& w : queries) w = static_cast<pulphd::Word>(rng.next());
  for (auto& w : prototypes) w = static_cast<pulphd::Word>(rng.next());
  std::vector<std::uint32_t> out(batch * classes);
  for (auto _ : state) {
    kernels::hamming_distance_matrix(queries, prototypes, batch, classes, words, out,
                                     threads);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_HammingDistanceMatrixThreads)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({1024, 8});

void BM_HammingDistanceMatrixBackend(benchmark::State& state) {
  // Single-thread distance matrix per compiled backend (arg = index into
  // compiled_backends); unsupported/out-of-range entries are skipped so the
  // registration works on any host.
  const auto index = static_cast<std::size_t>(state.range(0));
  const auto backends = kernels::compiled_backends();
  if (index >= backends.size() || !backends[index]->supported()) {
    state.SkipWithError("backend not available on this host");
    return;
  }
  const kernels::ScopedBackend forced(backends[index]);
  state.SetLabel(backends[index]->name);
  const std::size_t batch = 1024;
  const std::size_t classes = 5;
  const std::size_t words = pulphd::words_for_dim(10048);
  Xoshiro256StarStar rng(16);
  std::vector<pulphd::Word> queries(batch * words);
  std::vector<pulphd::Word> prototypes(classes * words);
  for (auto& w : queries) w = static_cast<pulphd::Word>(rng.next());
  for (auto& w : prototypes) w = static_cast<pulphd::Word>(rng.next());
  std::vector<std::uint32_t> out(batch * classes);
  for (auto _ : state) {
    kernels::hamming_distance_matrix(queries, prototypes, batch, classes, words, out, 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_HammingDistanceMatrixBackend)->Arg(0)->Arg(1)->Arg(2);

void BM_PredictBatchThreads(benchmark::State& state) {
  // End-to-end inference (spatial encode -> bundle -> AM lookup) over a
  // batch of trials: the path evaluate_hd drives, where encoding dominates
  // and trial-level sharding approaches linear scaling.
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  hd::ClassifierConfig cfg;  // paper defaults: 10,000-D, 4 channels
  cfg.threads = threads;
  hd::HdClassifier clf(cfg);
  Xoshiro256StarStar rng(15);
  std::vector<hd::Trial> trials(batch);
  for (std::size_t t = 0; t < batch; ++t) {
    for (std::size_t s = 0; s < 20; ++s) {
      hd::Sample sample(cfg.channels);
      for (auto& v : sample) {
        v = static_cast<float>(rng.next() % 2100u) / 100.0f;
      }
      trials[t].push_back(std::move(sample));
    }
    clf.train(trials[t], t % cfg.classes);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.predict_batch(trials));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_PredictBatchThreads)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({64, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pulphd::benchjson::SuiteOptions opt;
  std::string out_path = "BENCH_hd_ops.json";
  // Strip the suite's flags before handing argv to google-benchmark.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (!pulphd::benchjson::parse_suite_arg(argv[i], opt, out_path)) {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  pulphd::benchjson::run_suite_and_write(opt, out_path);
  if (opt.quick) return 0;  // CI smoke: JSON suite only

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
