// Ablation: double buffering (§3). "By applying a double buffering policy
// via DMA, data are moved from high latency memory (L2) to L1 memory while
// the cores are processing the data already available in L1."
//
// Compares the chain with overlapped (ping/pong) transfers against a
// serialized fetch-then-compute policy, across platforms and channel
// counts. The gap widens as the streamed matrices grow.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pulphd;

  std::puts("Ablation: DMA double buffering on/off\n");

  TextTable table("Double buffering ablation (cycles per classification)");
  table.set_header({"Platform", "channels", "overlapped(k)", "serialized(k)", "saving"});

  struct Case {
    sim::ClusterConfig cluster;
    std::size_t channels;
  };
  const std::vector<Case> cases = {
      {sim::ClusterConfig::pulpv3(4), 4},    {sim::ClusterConfig::wolf(8, true), 4},
      {sim::ClusterConfig::wolf(8, true), 32}, {sim::ClusterConfig::wolf(8, true), 128},
      {sim::ClusterConfig::wolf(8, true), 256},
  };

  for (const Case& c : cases) {
    const hd::HdClassifier model = bench::trained_model(10000, c.channels, 1);
    const auto window = bench::bench_window(c.channels, 1);
    kernels::ChainConfig on;
    on.double_buffering = true;
    kernels::ChainConfig off;
    off.double_buffering = false;
    const std::uint64_t fast =
        kernels::ProcessingChain(c.cluster, model, on).classify(window).cycles.total();
    const std::uint64_t slow =
        kernels::ProcessingChain(c.cluster, model, off).classify(window).cycles.total();
    table.add_row({c.cluster.name, std::to_string(c.channels),
                   fmt_cycles_k(static_cast<double>(fast)),
                   fmt_cycles_k(static_cast<double>(slow)),
                   fmt_percent(1.0 - static_cast<double>(fast) / static_cast<double>(slow))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape check: overlapping hides nearly the whole transfer time; the\n"
            "saving grows with the streamed IM footprint (many channels).");
  return 0;
}
